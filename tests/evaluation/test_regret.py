"""Unit tests for rank-regret and regret-ratio measurement."""

import numpy as np
import pytest

from repro.datasets import independent, paper_example
from repro.evaluation import (
    rank_regret_exact_2d,
    rank_regret_for_function,
    rank_regret_sampled,
    regret_ratio_for_function,
    regret_ratio_sampled,
)
from repro.exceptions import ValidationError
from repro.ranking import ranks, weights_from_angles


class TestRankRegretForFunction:
    def test_definition1(self):
        values = paper_example().values
        # Under f = x1 + x2 the ranking is t7, t3, t5, t1, ... so the set
        # {t5, t1} has rank-regret 3 (t5's rank).
        assert rank_regret_for_function(values, {4, 0}, [1.0, 1.0]) == 3

    def test_full_set_has_regret_one(self):
        values = paper_example().values
        assert rank_regret_for_function(values, range(7), [1.0, 1.0]) == 1

    def test_validation(self):
        values = paper_example().values
        with pytest.raises(ValidationError):
            rank_regret_for_function(values, [], [1.0, 1.0])
        with pytest.raises(ValidationError):
            rank_regret_for_function(values, [99], [1.0, 1.0])


class TestExact2D:
    def test_full_dataset_is_one(self):
        values = independent(30, 2, seed=0).values
        assert rank_regret_exact_2d(values, range(30)) == 1

    def test_matches_dense_grid(self):
        values = independent(25, 2, seed=1).values
        subset = [0, 5, 9]
        exact = rank_regret_exact_2d(values, subset)
        grid_worst = 0
        for theta in np.linspace(0, np.pi / 2, 4000):
            w = weights_from_angles([theta])
            r = ranks(values, w)
            grid_worst = max(grid_worst, min(int(r[i]) for i in subset))
        # The grid is a lower bound on the true (exact) max.
        assert exact >= grid_worst
        assert exact <= grid_worst + 2  # grid granularity slack

    def test_single_worst_item(self):
        values = independent(40, 2, seed=2).values
        # The globally worst item under w=(1,1)-ish should give large regret.
        sums = values.sum(axis=1)
        worst = int(np.argmin(sums))
        assert rank_regret_exact_2d(values, [worst]) > 10

    def test_monotone_in_subset(self):
        """Adding items can only reduce rank-regret."""
        values = independent(35, 2, seed=3).values
        small = rank_regret_exact_2d(values, [1, 2])
        large = rank_regret_exact_2d(values, [1, 2, 3, 4, 5])
        assert large <= small

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            rank_regret_exact_2d(np.ones((5, 3)), [0])


class TestSampled:
    def test_never_exceeds_exact_in_2d(self):
        values = independent(40, 2, seed=4).values
        subset = [0, 3, 7]
        exact = rank_regret_exact_2d(values, subset)
        sampled = rank_regret_sampled(values, subset, 3000, rng=0)
        assert sampled <= exact

    def test_close_to_exact_with_many_samples(self):
        values = independent(30, 2, seed=5).values
        subset = [2, 11]
        exact = rank_regret_exact_2d(values, subset)
        sampled = rank_regret_sampled(values, subset, 20_000, rng=1)
        assert sampled >= exact * 0.5

    def test_distribution_mode(self):
        values = independent(30, 3, seed=6).values
        dist = rank_regret_sampled(values, [0, 1], 500, rng=2, return_distribution=True)
        assert dist.shape == (500,)
        assert dist.min() >= 1
        assert int(dist.max()) == rank_regret_sampled(values, [0, 1], 500, rng=2)

    def test_deterministic_given_seed(self):
        values = independent(30, 3, seed=7).values
        a = rank_regret_sampled(values, [0], 300, rng=3)
        assert a == rank_regret_sampled(values, [0], 300, rng=3)

    def test_validation(self):
        values = independent(10, 2, seed=8).values
        with pytest.raises(ValidationError):
            rank_regret_sampled(values, [0], 0)
        with pytest.raises(ValidationError):
            rank_regret_sampled(values, [], 10)


class TestRegretRatio:
    def test_zero_when_best_included(self):
        values = independent(30, 3, seed=9).values
        w = np.array([0.4, 0.3, 0.3])
        best = int(np.argmax(values @ w))
        assert regret_ratio_for_function(values, [best], w) == 0.0

    def test_ratio_formula(self):
        values = np.array([[1.0, 0.0], [0.5, 0.0], [0.0, 1.0]])
        # Under w=(1,0): best is 1.0, subset {1} achieves 0.5 -> ratio 0.5.
        assert regret_ratio_for_function(values, [1], [1.0, 0.0]) == pytest.approx(0.5)

    def test_sampled_bounded_by_one(self):
        values = independent(50, 3, seed=10).values
        ratio = regret_ratio_sampled(values, [0], 500, rng=4)
        assert 0.0 <= ratio <= 1.0

    def test_sampled_zero_for_full_set(self):
        values = independent(50, 3, seed=11).values
        assert regret_ratio_sampled(values, range(50), 500, rng=5) == 0.0
