"""Unit tests for the k-set count upper bounds."""

import pytest

from repro.datasets import independent
from repro.evaluation import kset_upper_bound, trivial_kset_bound
from repro.exceptions import ValidationError
from repro.geometry import enumerate_ksets_2d


class TestKsetUpperBound:
    def test_2d_formula(self):
        assert kset_upper_bound(1000, 8, 2) == pytest.approx(1000 * 2.0)

    def test_3d_formula(self):
        assert kset_upper_bound(100, 4, 3) == pytest.approx(100 * 8.0)

    def test_high_d_polynomial(self):
        assert kset_upper_bound(100, 5, 4) == pytest.approx(100 ** 3.99)

    def test_1d_single(self):
        assert kset_upper_bound(100, 5, 1) == 1.0

    def test_monotone_in_k_for_fixed_nd(self):
        assert kset_upper_bound(500, 10, 3) < kset_upper_bound(500, 50, 3)

    def test_validation(self):
        with pytest.raises(ValidationError):
            kset_upper_bound(0, 1, 2)
        with pytest.raises(ValidationError):
            kset_upper_bound(10, 11, 2)

    def test_actual_2d_counts_below_combined_bound(self):
        """Paper Fig. 13–16: measured counts sit far below the bounds.

        With unit constants the asymptotic bound can theoretically be
        crossed on tiny inputs, so compare against the max of the
        asymptotic and trivial binomial bounds.
        """
        values = independent(120, 2, seed=0).values
        for k in (2, 6, 12):
            actual = len(enumerate_ksets_2d(values, k))
            bound = max(kset_upper_bound(120, k, 2), trivial_kset_bound(120, k))
            assert actual <= bound


class TestTrivialBound:
    def test_binomial(self):
        assert trivial_kset_bound(5, 2) == pytest.approx(10.0)

    def test_symmetry(self):
        assert trivial_kset_bound(10, 3) == pytest.approx(trivial_kset_bound(10, 7))

    def test_validation(self):
        with pytest.raises(ValidationError):
            trivial_kset_bound(5, 6)
