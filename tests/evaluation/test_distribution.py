"""Unit tests for rank-regret distribution analysis."""

import pytest

from repro.core import mdrc
from repro.datasets import independent
from repro.evaluation import (
    rank_regret_distribution,
    rank_regret_sampled,
    worst_functions,
)
from repro.exceptions import ValidationError


class TestDistribution:
    def test_maximum_matches_sampled_estimator(self):
        values = independent(60, 3, seed=0).values
        subset = [0, 5, 9]
        dist = rank_regret_distribution(values, subset, k=5, num_functions=1000, rng=1)
        assert dist.maximum == rank_regret_sampled(values, subset, 1000, rng=1)

    def test_percentiles_monotone(self):
        values = independent(60, 3, seed=1).values
        dist = rank_regret_distribution(values, [2, 7], k=5, num_functions=1000, rng=2)
        assert (
            dist.percentiles[50]
            <= dist.percentiles[90]
            <= dist.percentiles[99]
            <= dist.percentiles[100]
        )
        assert dist.percentiles[100] == dist.maximum

    def test_full_set_distribution_is_all_ones(self):
        values = independent(40, 3, seed=2).values
        dist = rank_regret_distribution(
            values, range(40), k=1, num_functions=500, rng=3
        )
        assert dist.maximum == 1
        assert dist.mean == 1.0
        assert dist.satisfied_fraction == 1.0

    def test_satisfied_fraction_for_good_representative(self):
        values = independent(100, 3, seed=3).values
        k = 10
        result = mdrc(values, k)
        dist = rank_regret_distribution(
            values, result.indices, k, num_functions=2000, rng=4
        )
        assert dist.satisfied_fraction >= 0.95
        assert dist.k == k
        assert dist.samples == 2000

    def test_validation(self):
        values = independent(20, 3, seed=4).values
        with pytest.raises(ValidationError):
            rank_regret_distribution(values, [], 2)
        with pytest.raises(ValidationError):
            rank_regret_distribution(values, [0], 0)
        with pytest.raises(ValidationError):
            rank_regret_distribution(values, [0], 2, num_functions=0)


class TestWorstFunctions:
    def test_sorted_worst_first(self):
        values = independent(60, 3, seed=5).values
        worst = worst_functions(values, [0, 1], count=5, num_functions=500, rng=6)
        regrets = [r for _, r in worst]
        assert regrets == sorted(regrets, reverse=True)
        assert len(worst) == 5

    def test_reported_regret_is_consistent(self):
        from repro.evaluation import rank_regret_for_function

        values = independent(60, 3, seed=6).values
        subset = [3, 4]
        for w, regret in worst_functions(values, subset, count=3, num_functions=300, rng=7):
            exact = rank_regret_for_function(values, subset, w)
            # The vectorized estimator ignores index tie-breaks; allow 1 slack.
            assert abs(exact - regret) <= 1

    def test_validation(self):
        values = independent(20, 3, seed=7).values
        with pytest.raises(ValidationError):
            worst_functions(values, [0], count=0)
