"""Unit tests for the representative evaluation report."""

import pytest

from repro.core import two_d_rrr
from repro.datasets import independent
from repro.evaluation import evaluate_representative
from repro.exceptions import ValidationError


class TestEvaluateRepresentative:
    def test_exact_in_2d_by_default(self):
        values = independent(40, 2, seed=0).values
        chosen = two_d_rrr(values, 4)
        report = evaluate_representative(values, chosen, 4)
        assert report.exact
        assert report.size == len(chosen)
        assert report.rank_regret <= 8

    def test_sampled_in_3d(self):
        values = independent(40, 3, seed=1).values
        report = evaluate_representative(values, [0, 1, 2], 5, num_functions=500)
        assert not report.exact
        assert report.rank_regret >= 1

    def test_meets_k_flag(self):
        values = independent(40, 2, seed=2).values
        full = evaluate_representative(values, range(40), 1)
        assert full.meets_k
        assert full.rank_regret == 1

    def test_force_sampled_in_2d(self):
        values = independent(40, 2, seed=3).values
        report = evaluate_representative(values, [0], 5, exact=False, num_functions=200)
        assert not report.exact

    def test_force_exact_in_3d_raises(self):
        values = independent(20, 3, seed=4).values
        with pytest.raises(ValidationError):
            evaluate_representative(values, [0], 2, exact=True)

    def test_empty_subset_raises(self):
        values = independent(20, 2, seed=5).values
        with pytest.raises(ValidationError):
            evaluate_representative(values, [], 2)

    def test_regret_ratio_included(self):
        values = independent(40, 3, seed=6).values
        report = evaluate_representative(values, range(40), 1, num_functions=200)
        assert report.regret_ratio == 0.0
