"""Bit-identity and lifecycle tests for the shared-memory fan-out layer.

The contract under test: for every work split — function chunks, row
chunks, any worker count — the parallel engine returns *bit-identical*
results to the serial tiered path, including on tie-dense and
duplicate-row data that exercises the scalar fallback tier.  Pool and
shared-segment lifecycle (lazy creation, n_jobs=1 degradation, close,
pickling) is covered alongside.
"""

import pickle

import numpy as np
import pytest

from repro.engine import ScoreEngine, SharedMatrix, resolve_n_jobs
from repro.engine import parallel as par
from repro.exceptions import ValidationError
from repro.ranking import sample_functions


def _engines(values, n_jobs=2, **kwargs):
    """(serial, parallel-with-zero-cutover) engine pair."""
    serial = ScoreEngine(values)
    fanout = ScoreEngine(values, n_jobs=n_jobs, parallel_min_work=0, **kwargs)
    return serial, fanout


def _instances():
    rng = np.random.default_rng(20260731)
    cases = []
    for n, d, m in ((31, 2, 17), (64, 3, 40), (300, 4, 65)):
        values = rng.random((n, d))
        cases.append((values, sample_functions(d, m, rng)))
    # Tie-dense: quantized scores hit the scalar verification tier.
    values = np.round(rng.random((60, 3)), 1)
    cases.append((values, np.round(sample_functions(3, 24, rng), 1) + 0.1))
    # Degenerate: identical rows provoke blocked-BLAS score noise.
    cases.append((np.full((40, 3), 0.873046875), sample_functions(3, 24, rng)))
    return cases


class TestFunctionChunkIdentity:
    @pytest.mark.parametrize("case", range(len(_instances())))
    def test_topk_bit_identical(self, case):
        values, weights = _instances()[case]
        serial, fanout = _engines(values)
        with fanout:
            k = max(1, values.shape[0] // 4)
            a = serial.topk_batch(weights, k)
            b = fanout.topk_batch(weights, k)
            assert np.array_equal(a.order, b.order)
            assert np.array_equal(a.members, b.members)

    @pytest.mark.parametrize("case", range(len(_instances())))
    def test_rank_bit_identical(self, case):
        values, weights = _instances()[case]
        serial, fanout = _engines(values)
        with fanout:
            subset = [0, values.shape[0] // 2, values.shape[0] - 1]
            assert np.array_equal(
                serial.rank_of_best_batch(weights, subset),
                fanout.rank_of_best_batch(weights, subset),
            )

    def test_score_batch_bit_identical(self):
        # Aligned function chunks replay the serial matmul calls, so raw
        # GEMM output matches bitwise, not just to an ulp.
        rng = np.random.default_rng(5)
        values = rng.random((50, 4))
        weights = sample_functions(4, 96, 5)
        serial = ScoreEngine(values, chunk_bytes=1)
        fanout = ScoreEngine(values, chunk_bytes=1, n_jobs=2, parallel_min_work=0)
        with fanout:
            assert np.array_equal(
                serial.score_batch(weights), fanout.score_batch(weights)
            )


class TestRowChunkIdentity:
    def test_topk_bit_identical(self):
        # m < 2 * n_jobs with a large-enough n selects the row-chunk plan.
        rng = np.random.default_rng(6)
        values = rng.random((400, 3))
        weights = sample_functions(3, 3, 6)
        serial, fanout = _engines(values)
        with fanout:
            for k in (1, 7, 400):
                a = serial.topk_batch(weights, k)
                b = fanout.topk_batch(weights, k)
                assert np.array_equal(a.order, b.order)

    def test_topk_duplicate_rows(self):
        values = np.full((120, 3), 0.873046875)
        weights = sample_functions(3, 2, 0)
        serial, fanout = _engines(values)
        with fanout:
            a = serial.topk_batch(weights, 5)
            b = fanout.topk_batch(weights, 5)
            assert np.array_equal(a.order, b.order)

    def test_rank_bit_identical(self):
        rng = np.random.default_rng(7)
        values = rng.random((500, 3))
        weights = sample_functions(3, 3, 7)
        serial, fanout = _engines(values)
        with fanout:
            assert np.array_equal(
                serial.rank_of_best_batch(weights, [2, 250]),
                fanout.rank_of_best_batch(weights, [2, 250]),
            )


class TestPlanning:
    def test_forced_multi_chunk_small_matrix(self):
        # A matrix far below the default cutover still splits into many
        # work units once the cutover is forced to zero.
        rng = np.random.default_rng(8)
        values = rng.random((40, 3))
        weights = sample_functions(3, 64, 8)
        serial, fanout = _engines(values, n_jobs=3)
        with fanout:
            a = serial.topk_batch(weights, 7)
            b = fanout.topk_batch(weights, 7)
            assert np.array_equal(a.order, b.order)
            assert fanout.stats["parallel_calls"] == 1
            assert fanout._parallel.tasks_dispatched > 1

    def test_default_cutover_keeps_small_calls_serial(self):
        values = np.random.default_rng(9).random((40, 3))
        engine = ScoreEngine(values, n_jobs=2)  # default parallel_min_work
        engine.topk_batch(sample_functions(3, 10, 9), 5)
        assert engine._parallel is None
        assert engine.stats["parallel_calls"] == 0

    def test_n_jobs_one_degrades_to_serial(self):
        values = np.random.default_rng(10).random((40, 3))
        weights = sample_functions(3, 30, 10)
        serial = ScoreEngine(values)
        inline = ScoreEngine(values, n_jobs=1, parallel_min_work=0)
        a = serial.topk_batch(weights, 4)
        b = inline.topk_batch(weights, 4)
        assert np.array_equal(a.order, b.order)
        assert inline._parallel is None
        assert inline.stats["parallel_calls"] == 0

    def test_resolve_n_jobs(self):
        assert resolve_n_jobs(None) == 1
        assert resolve_n_jobs(1) == 1
        assert resolve_n_jobs(3) == 3
        assert resolve_n_jobs(-1) >= 1
        with pytest.raises(ValueError):
            resolve_n_jobs(0)
        with pytest.raises(ValidationError):
            ScoreEngine(np.ones((3, 2)), n_jobs=-2)


class TestLifecycle:
    def test_close_is_idempotent(self):
        values = np.random.default_rng(11).random((64, 3))
        engine = ScoreEngine(values, n_jobs=2, parallel_min_work=0)
        engine.topk_batch(sample_functions(3, 20, 11), 3)
        assert engine._parallel is not None
        engine.close()
        assert engine._parallel is None
        engine.close()
        # The engine keeps working serially after close.
        engine.topk_order_batch(sample_functions(3, 4, 12), 3)

    def test_shared_matrix_roundtrip(self):
        matrix = np.arange(12.0).reshape(4, 3)
        shared = SharedMatrix.create(matrix)
        try:
            attached = SharedMatrix.attach(shared.spec)
            assert np.array_equal(attached.array, matrix)
            assert not attached.array.flags.writeable
            attached.close()
        finally:
            shared.close()


class TestPicklingAndWorkerState:
    def test_pickle_preserves_lazy_state(self):
        values = np.random.default_rng(12).random((80, 3))
        engine = ScoreEngine(values, n_jobs=2, parallel_min_work=0)
        with engine:
            w = sample_functions(3, 1, 12)[0]
            engine.top_k(w, 5)  # one memo entry
            # A direct serial probe builds the parent-side orderings (the
            # parallel plans build them inside the workers instead).
            engine.topk_order_batch(sample_functions(3, 4, 1), 5)
            assert engine._orderings is not None
            clone = pickle.loads(pickle.dumps(engine))
        # Orderings and memo travelled: no re-sort, and the memoized
        # probe hits without a recompute.
        assert clone._orderings is not None
        assert clone._parallel is None
        misses_before = clone.stats["memo_misses"]
        assert np.array_equal(clone.top_k(w, 5), engine.top_k(w, 5))
        assert clone.stats["memo_misses"] == misses_before

    def test_worker_engine_built_once_per_process(self):
        # Drive the worker entry points in-process: the initializer
        # builds one engine, every task reuses it, and lazily-built
        # orderings persist across tasks instead of re-sorting per chunk.
        values = np.random.default_rng(13).random((64, 3))
        shared = SharedMatrix.create(values)
        saved = dict(par._WORKER)
        try:
            par._init_worker(shared.spec, {"n_jobs": 1})
            first_engine = par._WORKER["engine"]
            weights = sample_functions(3, 8, 13)
            out1 = par._run_task("topk", weights, 4)
            orderings_after_first = par._WORKER["engine"]._orderings
            assert orderings_after_first is not None
            out2 = par._run_task("topk", weights, 4)
            assert par._WORKER["engine"] is first_engine
            assert par._WORKER["engine"]._orderings is orderings_after_first
            assert np.array_equal(out1, out2)
            assert np.array_equal(out1, ScoreEngine(values).topk_order_batch(weights, 4))
        finally:
            par._WORKER.get("shared", shared).close()
            par._WORKER.clear()
            par._WORKER.update(saved)
            shared.close()


class TestPrunedRankCounting:
    def test_matches_full_scan_on_grid(self):
        rng = np.random.default_rng(14)
        for n, d in ((50, 2), (300, 4), (997, 3)):
            values = rng.random((n, d))
            weights = sample_functions(d, 60, rng)
            subset = [0, n // 3, n - 1]
            engine = ScoreEngine(values)
            got = engine.rank_of_best_batch(weights, subset)
            # Row-chunk counting is the pre-pruning full scan; summing it
            # over one full-range slice reproduces the legacy path.
            above, contested = engine.rank_count_slice(weights, subset, 0, n)
            for j in np.flatnonzero(contested):
                exact = values @ weights[j]
                above[j] = int((exact > exact[subset].max()).sum())
            assert np.array_equal(got, above + 1)

    def test_cancellation_heavy_scores_stay_exact(self):
        # Float32 counting noise scales with ||w||*||x||, not with the
        # resulting score: near-opposite columns at large magnitude make
        # scores tiny relative to the rounding error, and every such row
        # must fall into the contested band and be recounted exactly.
        rng = np.random.default_rng(16)
        values = np.column_stack(
            [10000.0 + rng.random(400) * 0.002, np.full(400, 10000.0)]
        )
        weights = np.array([[1.0, -1.0], [0.5, -0.5], [1.0, -0.999]])
        subset = [int(np.argsort(values[:, 0])[200])]
        from repro.ranking import rank_of

        engine = ScoreEngine(values)
        got = engine.rank_of_best_batch(weights, subset)
        for j, w in enumerate(weights):
            assert got[j] == min(rank_of(values, w, i) for i in subset)
        assert engine.stats["verified_columns"] > 0  # band fallback fired

    def test_pruning_actually_prunes(self):
        # A heavy-tailed norm profile lets the orderings cut the scanned
        # prefix far below n x m.
        rng = np.random.default_rng(15)
        n, m = 4000, 300
        values = rng.random((n, 3)) * rng.random((n, 1)) ** 4
        top = np.argsort(-np.linalg.norm(values, axis=1))[:5]
        engine = ScoreEngine(values)
        weights = sample_functions(3, m, 15)
        engine.rank_of_best_batch(weights, top)
        assert engine.stats["rank_prefix_rows"] < 0.5 * n * m


class TestBackends:
    """Thread-vs-process-vs-serial bit-identity and the auto policy."""

    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("case", range(len(_instances())))
    def test_topk_bit_identical_per_backend(self, backend, case):
        values, weights = _instances()[case]
        serial = ScoreEngine(values, backend="serial")
        fanout = ScoreEngine(
            values, n_jobs=2, parallel_min_work=0, backend=backend
        )
        with fanout:
            k = max(1, values.shape[0] // 4)
            a = serial.topk_batch(weights, k)
            b = fanout.topk_batch(weights, k)
            assert np.array_equal(a.order, b.order)
            assert np.array_equal(a.members, b.members)

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_rank_and_score_bit_identical_per_backend(self, backend):
        values, weights = _instances()[2]
        serial = ScoreEngine(values, chunk_bytes=1, backend="serial")
        fanout = ScoreEngine(
            values, chunk_bytes=1, n_jobs=2, parallel_min_work=0, backend=backend
        )
        with fanout:
            subset = [0, values.shape[0] // 2, values.shape[0] - 1]
            assert np.array_equal(
                serial.rank_of_best_batch(weights, subset),
                fanout.rank_of_best_batch(weights, subset),
            )
            assert np.array_equal(
                serial.score_batch(weights), fanout.score_batch(weights)
            )

    def test_serial_backend_never_pools(self):
        values = np.random.default_rng(21).random((60, 3))
        engine = ScoreEngine(values, n_jobs=4, parallel_min_work=0, backend="serial")
        engine.topk_batch(sample_functions(3, 40, 21), 5)
        assert engine._parallel is None
        assert engine.stats["parallel_calls"] == 0

    def test_auto_starts_with_threads(self):
        from repro.engine import ThreadExecutor

        values = np.random.default_rng(22).random((60, 3))
        engine = ScoreEngine(values, n_jobs=2, parallel_min_work=0)
        with engine:
            assert engine.backend == "auto"
            engine.topk_batch(sample_functions(3, 40, 22), 5)
            assert isinstance(engine._parallel, ThreadExecutor)

    def test_auto_escalates_to_processes_when_gil_bound(self):
        from repro.engine import ParallelExecutor

        values = np.random.default_rng(23).random((60, 3))
        engine = ScoreEngine(values, n_jobs=2, parallel_min_work=0)
        with engine:
            # Synthesize a measured scalar-fallback-heavy history.
            engine.stats["gemm_columns"] = 100_000
            engine.stats["verified_columns"] = 50_000
            assert engine._select_backend() == "process"
            engine.topk_batch(sample_functions(3, 40, 23), 5)
            assert isinstance(engine._parallel, ParallelExecutor)
            # Escalation is sticky even after the ratio normalizes.
            engine.stats["verified_columns"] = 0
            assert engine._select_backend() == "process"

    def test_invalid_backend_rejected(self):
        with pytest.raises(ValidationError):
            ScoreEngine(np.ones((3, 2)), backend="gpu")

    def test_thread_clone_shares_heavy_state(self):
        values = np.random.default_rng(24).random((200, 3))
        engine = ScoreEngine(values)
        engine.topk_batch(sample_functions(3, 30, 24), 9)
        engine._ensure_orderings()
        clone = engine._thread_clone()
        assert clone.values is engine.values
        assert clone._orderings is engine._orderings
        assert clone._quantizer is engine._quantizer
        assert clone.stats is not engine.stats
        assert clone._memo is not engine._memo
        assert clone.n_jobs == 1 and clone.backend == "serial"
        w = sample_functions(3, 6, 25)
        assert np.array_equal(
            clone.topk_order_batch(w, 9), engine.topk_order_batch(w, 9)
        )

    def test_thread_worker_stats_fold_back_into_parent(self):
        # The auto escalation policy reads the parent's counters, so
        # fanned-out work must land there, not die with the clones.
        values = np.random.default_rng(26).random((80, 3))
        engine = ScoreEngine(values, n_jobs=2, parallel_min_work=0, backend="thread")
        with engine:
            engine.topk_batch(sample_functions(3, 60, 26), 6)
            assert engine.stats["gemm_columns"] >= 60
