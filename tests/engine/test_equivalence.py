"""Equivalence of the refactored algorithms with the frozen seed paths.

:mod:`repro.engine.reference` preserves the pre-engine implementations
verbatim; these tests pin that the engine-backed rewrites produce
*identical* outputs — same indices, same draw counts, same counters —
for fixed RNG streams over seeded instance grids.
"""

import numpy as np
import pytest

from repro.core import mdrc, workload_rrr
from repro.datasets import anticorrelated, independent
from repro.engine.reference import (
    reference_batch_top_k_sets,
    reference_kset_graph_edges,
    reference_mdrc,
    reference_rank_regret_sampled,
    reference_sample_ksets,
)
from repro.evaluation import rank_regret_sampled
from repro.geometry.ksets import kset_graph_edges, sample_ksets
from repro.ranking import sample_functions
from repro.ranking.topk import batch_top_k_sets


class TestBatchTopKSets:
    @pytest.mark.parametrize("n,d,k", [(20, 2, 1), (50, 3, 5), (80, 4, 20), (30, 3, 30)])
    def test_matches_reference(self, n, d, k):
        rng = np.random.default_rng(n * d + k)
        values = rng.random((n, d))
        weights = sample_functions(d, 31, rng)
        assert batch_top_k_sets(values, weights, k) == reference_batch_top_k_sets(
            values, weights, k
        )


class TestMDRCUnchanged:
    @pytest.mark.parametrize("seed,d,k", [(0, 2, 3), (1, 3, 5), (2, 4, 8), (3, 3, 4)])
    def test_same_output_and_counters(self, seed, d, k):
        values = independent(70, d, seed=seed).values
        new = mdrc(values, k)
        old = reference_mdrc(values, k)
        assert new.indices == old.indices
        assert new.cells == old.cells
        assert new.max_depth_reached == old.max_depth_reached
        assert new.capped_cells == old.capped_cells
        assert new.corner_evaluations == old.corner_evaluations

    def test_best_rank_policy_unchanged(self):
        values = independent(60, 3, seed=14).values
        assert (
            mdrc(values, 6, choice="best-rank").indices
            == reference_mdrc(values, 6, choice="best-rank").indices
        )

    def test_uncached_ablation_unchanged(self):
        values = independent(50, 3, seed=15).values
        new = mdrc(values, 5, use_cache=False)
        old = reference_mdrc(values, 5, use_cache=False)
        assert new.indices == old.indices
        assert new.corner_evaluations == old.corner_evaluations

    def test_depth_cap_covers_reference_output(self):
        # Capped cells now contribute their corners' top-1 on top of the
        # reference's center top-1 (a deliberate coverage fix: the center
        # alone can miss a tiny angular sliver and break the d·k
        # guarantee), so the output is a superset of the frozen
        # reference's — never worse, same cell accounting.
        values = independent(50, 3, seed=16).values
        new = mdrc(values, 1, max_depth=1)
        old = reference_mdrc(values, 1, max_depth=1)
        assert set(new.indices) >= set(old.indices)
        assert new.capped_cells == old.capped_cells
        assert new.cells == old.cells

    def test_anticorrelated_hard_case(self):
        values = anticorrelated(80, 3, seed=12).values
        assert mdrc(values, 8).indices == reference_mdrc(values, 8).indices

    def test_budget_capped_regime_stays_bounded(self):
        # When the global cell budget fires, the frontier traversal ties
        # off a breadth-first fringe (the seed tied off a depth-first
        # one), so outputs legitimately differ — but total work must stay
        # bounded by the budget and the output must remain a valid
        # representative.
        values = independent(70, 3, seed=3).values
        capped = mdrc(values, 1, max_cells=500)
        assert capped.capped_cells > 0
        assert capped.cells <= 500 + 1
        assert capped.indices
        assert rank_regret_sampled(values, capped.indices, 1000, rng=0) <= 40


class TestKSetrUnchanged:
    @pytest.mark.parametrize("seed", [0, 9, 42])
    def test_same_ksets_draws_and_witnesses(self, seed):
        values = independent(40, 3, seed=seed).values
        new = sample_ksets(values, 3, patience=60, rng=seed)
        old = reference_sample_ksets(values, 3, patience=60, rng=seed)
        assert new.ksets == old.ksets
        assert new.draws == old.draws
        assert new.exhausted == old.exhausted
        assert all(
            np.array_equal(a, b) for a, b in zip(new.functions, old.functions)
        )

    def test_max_draws_exhaustion_unchanged(self):
        values = independent(100, 4, seed=6).values
        new = sample_ksets(values, 10, patience=10_000, rng=4, max_draws=70)
        old = reference_sample_ksets(values, 10, patience=10_000, rng=4, max_draws=70)
        assert new.ksets == old.ksets
        assert new.draws == old.draws == 70
        assert new.exhausted and old.exhausted


class TestRankRegretSampledUnchanged:
    @pytest.mark.parametrize("seed", [0, 1, 2])
    def test_same_estimate_on_clean_data(self, seed):
        values = independent(60, 3, seed=seed).values
        subset = [0, 7, 23]
        assert rank_regret_sampled(
            values, subset, 1500, rng=seed
        ) == reference_rank_regret_sampled(values, subset, 1500, rng=seed)

    def test_fixes_duplicate_row_inflation(self):
        # Deliberate divergence: the reference estimator lets blocked-GEMM
        # noise rank identical rows above each other; the engine does not.
        values = np.full((15, 3), 0.873046875)
        assert rank_regret_sampled(values, [0], 500, rng=0) == 1


class TestKsetGraphEdgesUnchanged:
    def test_random_collections(self):
        rng = np.random.default_rng(13)
        for _ in range(20):
            m = int(rng.integers(2, 25))
            k = int(rng.integers(1, 6))
            ksets = [
                frozenset(int(i) for i in rng.choice(30, size=k, replace=False))
                for _ in range(m)
            ]
            assert kset_graph_edges(ksets) == reference_kset_graph_edges(ksets)

    def test_heterogeneous_sizes(self):
        # The seed compares |A ∩ B| against |A| − 1 (the row set's size);
        # the vectorized form must keep that exact asymmetry.
        ksets = [frozenset({0, 1, 2}), frozenset({1, 2}), frozenset({2})]
        assert kset_graph_edges(ksets) == reference_kset_graph_edges(ksets)

    def test_empty_and_singleton(self):
        assert kset_graph_edges([]) == []
        assert kset_graph_edges([frozenset({1})]) == []


class TestWorkloadRRRUnchanged:
    def test_same_hitting_set_instance(self):
        values = independent(60, 3, seed=21).values
        weights = sample_functions(3, 120, 21)
        result = workload_rrr(values, weights, 5)
        distinct = list(dict.fromkeys(reference_batch_top_k_sets(values, weights, 5)))
        assert result.num_distinct_topk == len(distinct)
        # Every workload function must still find one of its top-5 covered.
        for row in reference_batch_top_k_sets(values, weights, 5):
            assert row & set(result.indices)
