"""Unit and property tests for :class:`repro.engine.ScoreEngine`.

The load-bearing property: the batched engine is *bit-identical* to the
scalar ``top_k`` path — same indices, same tie-breaking — over seeded
random instance grids spanning n, d, and k, including duplicate-score
and duplicate-row degeneracies that trip blocked-BLAS kernels.
"""

import numpy as np
import pytest

from repro.engine import ScoreEngine, unpack_indices
from repro.exceptions import ValidationError
from repro.ranking import rank_of, sample_functions
from repro.ranking.topk import ranking, top_k


def _instances():
    """Seeded (values, weights, k) grid over n, d, k — the equivalence lattice."""
    rng = np.random.default_rng(20260731)
    cases = []
    for n in (3, 17, 64, 65, 300):
        for d in (2, 3, 6):
            values = rng.random((n, d))
            weights = sample_functions(d, 23, rng)
            for k in {1, 2, n // 2 or 1, n - 1 or 1, n}:
                cases.append((values, weights, int(k)))
    return cases


class TestTopKBatchEquivalence:
    @pytest.mark.parametrize("case", range(len(_instances())))
    def test_bit_identical_to_scalar_top_k(self, case):
        values, weights, k = _instances()[case]
        engine = ScoreEngine(values)
        batch = engine.topk_batch(weights, k)
        for i, w in enumerate(weights):
            expected = top_k(values, w, k)
            assert np.array_equal(batch.order[i], expected)
            assert np.array_equal(
                unpack_indices(batch.members[i], values.shape[0]),
                np.sort(expected),
            )

    def test_tie_breaking_matches_scalar(self):
        # Quantized values force massive score ties; the engine must
        # break them by smaller row index exactly like the scalar path.
        rng = np.random.default_rng(7)
        values = np.round(rng.random((60, 3)), 1)
        weights = np.round(sample_functions(3, 40, rng), 1)
        weights[weights.sum(axis=1) == 0] = 1.0
        engine = ScoreEngine(values)
        for k in (1, 5, 30, 60):
            batch = engine.topk_batch(weights, k)
            for i, w in enumerate(weights):
                assert np.array_equal(batch.order[i], top_k(values, w, k))

    def test_duplicate_rows_resolve_by_index(self):
        # Identical rows can receive non-bit-identical GEMM scores
        # (blocked-kernel remainder lanes); the verified tie band must
        # hide that and always pick the smallest indices.
        values = np.full((15, 3), 0.873046875)
        engine = ScoreEngine(values)
        weights = sample_functions(3, 500, 0)
        batch = engine.topk_batch(weights, 2)
        assert np.array_equal(
            batch.order, np.tile(np.array([0, 1]), (500, 1))
        )

    def test_chunking_invariant(self):
        values = np.random.default_rng(3).random((50, 4))
        weights = sample_functions(4, 64, 3)
        big = ScoreEngine(values).topk_batch(weights, 7)
        # Force many tiny GEMM chunks; results must not change.
        small = ScoreEngine(values, chunk_bytes=1).topk_batch(weights, 7)
        assert np.array_equal(big.order, small.order)
        assert np.array_equal(big.members, small.members)

    def test_float32_mode_matches_float64(self):
        rng = np.random.default_rng(4)
        values = rng.random((200, 4))
        weights = sample_functions(4, 100, 4)
        exact = ScoreEngine(values).topk_batch(weights, 9)
        fast = ScoreEngine(values, float32=True).topk_batch(weights, 9)
        assert np.array_equal(exact.order, fast.order)

    def test_full_ranking_when_k_equals_n(self):
        rng = np.random.default_rng(5)
        values = rng.random((30, 3))
        weights = sample_functions(3, 10, 5)
        batch = ScoreEngine(values).topk_batch(weights, 30)
        for i, w in enumerate(weights):
            assert np.array_equal(batch.order[i], ranking(values, w))


class TestScoreBatch:
    def test_matches_direct_gemm(self):
        rng = np.random.default_rng(6)
        values = rng.random((40, 3))
        weights = sample_functions(3, 17, 6)
        out = ScoreEngine(values).score_batch(weights)
        assert np.array_equal(out, values @ weights.T)

    def test_chunked_close_to_unchunked(self):
        # Raw GEMM output may differ in the last ulp across chunk layouts
        # (BLAS blocking); rank decisions are verified elsewhere.
        rng = np.random.default_rng(7)
        values = rng.random((40, 3))
        weights = sample_functions(3, 17, 7)
        a = ScoreEngine(values).score_batch(weights)
        b = ScoreEngine(values, chunk_bytes=1).score_batch(weights)
        assert np.allclose(a, b, rtol=1e-13, atol=0.0)


class TestMemo:
    def test_hit_returns_same_result(self):
        rng = np.random.default_rng(8)
        values = rng.random((50, 3))
        engine = ScoreEngine(values)
        w = sample_functions(3, 1, 8)[0]
        first = engine.top_k(w, 5)
        second = engine.top_k(w, 5)
        assert np.array_equal(first, second)
        assert engine.stats["memo_hits"] == 1
        assert engine.stats["memo_misses"] == 1

    def test_different_k_is_different_entry(self):
        values = np.random.default_rng(9).random((50, 3))
        engine = ScoreEngine(values)
        w = sample_functions(3, 1, 9)[0]
        engine.top_k(w, 5)
        engine.top_k(w, 6)
        assert engine.stats["memo_misses"] == 2

    def test_lru_eviction(self):
        values = np.random.default_rng(10).random((20, 3))
        engine = ScoreEngine(values, memo_size=2)
        ws = sample_functions(3, 3, 10)
        for w in ws:
            engine.top_k(w, 2)
        engine.top_k(ws[0], 2)  # evicted by ws[2]; must recompute
        assert engine.stats["memo_misses"] == 4


class TestRankOfBestBatch:
    def test_matches_scalar_rank_of(self):
        rng = np.random.default_rng(11)
        values = rng.random((80, 3))
        weights = sample_functions(3, 200, 11)
        subset = [4, 17, 60]
        got = ScoreEngine(values).rank_of_best_batch(weights, subset)
        for j, w in enumerate(weights):
            expected = min(rank_of(values, w, i) for i in subset)
            assert got[j] == expected

    def test_duplicate_rows_rank_one(self):
        # The regression the hypothesis suite found: GEMM noise between
        # identical rows must not inflate the rank above 1.
        values = np.full((15, 3), 0.873046875)
        weights = sample_functions(3, 500, 0)
        ranks = ScoreEngine(values).rank_of_best_batch(weights, [0])
        assert int(ranks.max()) == 1

    def test_float32_overflow_magnitudes_stay_exact(self):
        # Regression: scores beyond the float32 range turned the banded
        # count's thresholds into inf, and inf > inf is False — rows
        # strictly above the bound were dropped from both the above and
        # near counts, so the mismatch fallback never fired and the rank
        # was silently undercounted.  Such functions must take the exact
        # float64 kernel instead.
        values = np.array([[1e150, 0.0], [2e150, 0.0], [0.5e150, 0.1e150]])
        got = ScoreEngine(values, quantize=None).rank_of_best_batch(
            np.array([[1.0, 0.0]]), [0]
        )
        assert got[0] == 2
        # Mixed magnitudes: huge rows with tiny weights (finite score
        # bound, but the float32 copy of the matrix overflows).
        values = np.array([[1e39, 0.0], [0.5, 0.0], [0.2, 0.3]])
        got = ScoreEngine(values, quantize=None).rank_of_best_batch(
            np.array([[1e-40, 1e-40]]), [1]
        )
        assert got[0] == 2

    def test_validation(self):
        engine = ScoreEngine(np.ones((5, 2)))
        with pytest.raises(ValidationError):
            engine.rank_of_best_batch(np.ones((3, 2)), [])
        with pytest.raises(ValidationError):
            engine.rank_of_best_batch(np.ones((3, 2)), [9])


class TestValidation:
    def test_bad_matrix(self):
        with pytest.raises(ValidationError):
            ScoreEngine(np.ones(4))
        with pytest.raises(ValidationError):
            ScoreEngine(np.array([[np.nan, 1.0]]))

    def test_bad_weights(self):
        engine = ScoreEngine(np.ones((4, 2)))
        with pytest.raises(ValidationError):
            engine.topk_batch(np.ones((3, 5)), 1)
        with pytest.raises(ValidationError):
            engine.topk_batch(np.ones(2), 1)

    def test_bad_k(self):
        engine = ScoreEngine(np.ones((4, 2)))
        with pytest.raises(ValidationError):
            engine.topk_batch(np.ones((1, 2)), 0)
        with pytest.raises(ValidationError):
            engine.topk_batch(np.ones((1, 2)), 5)
