"""Tests for the durability layer (:mod:`repro.engine.wal`).

The load-bearing property: recovery — newest valid snapshot + WAL
suffix replayed through the ordinary mutation path — reconstructs an
engine **bit-identical** to one that never crashed, for any mutation
sequence (ties, duplicate rows, denormal scales), any crash point
(including torn record tails), and with maintained views driven by the
replay.  Alongside: unit coverage for record framing, torn-tail
truncation vs bit-flip rejection, snapshot integrity and fallback,
revision monotonicity, the pid lock, and replay under an installed
``FaultInjector``.
"""

import os
import struct
import tempfile
import zlib

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    Commit,
    DurableStore,
    FaultInjector,
    MDRCView,
    ScoreEngine,
    WriteAheadLog,
    load_snapshot,
    replay_commits,
    write_snapshot,
)
from repro.engine.faults import injected
from repro.exceptions import (
    CorruptStateError,
    DataDirLockedError,
    ValidationError,
)


def _commit(revision, deleted=(), inserted=None, key=None, response=None):
    deleted = np.asarray(deleted, dtype=np.int64)
    inserted = (
        np.empty((0, 3)) if inserted is None else np.asarray(inserted, dtype=np.float64)
    )
    return Commit(
        revision=revision, events=((deleted, inserted),), key=key, response=response
    )


# ----------------------------------------------------------------------
# record framing


def test_wal_roundtrip(tmp_path):
    path = tmp_path / "wal.log"
    rows = np.array([[5e-324, 1.0, 1.0], [0.5, 0.5, 0.5]])
    wal = WriteAheadLog(path)
    wal.append(_commit(1, [0, 4], rows, key="a", response={"indices": [7, 8]}))
    wal.append(_commit(2, [1], None))
    wal.close()

    wal = WriteAheadLog(path)
    assert [c.revision for c in wal.commits] == [1, 2]
    first = wal.commits[0]
    assert first.key == "a" and first.response == {"indices": [7, 8]}
    deleted, inserted = first.events[0]
    assert np.array_equal(deleted, [0, 4])
    # The denormal survives the log bit-for-bit (raw-byte encoding).
    assert inserted.tobytes() == rows.tobytes()
    assert wal.commits[1].key is None and wal.commits[1].response is None
    wal.close()


def test_wal_torn_tail_truncated(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(_commit(1, [0]))
    wal.close()
    clean_size = os.path.getsize(path)

    # A crash mid-append leaves a frame whose payload is cut short.
    payload = _commit(2, [1]).to_payload()
    with open(path, "ab") as fh:
        fh.write(struct.pack("<II", len(payload), zlib.crc32(payload)))
        fh.write(payload[: len(payload) // 2])

    wal = WriteAheadLog(path)
    assert [c.revision for c in wal.commits] == [1]
    wal.close()
    assert os.path.getsize(path) == clean_size  # tail physically removed

    # A bare torn header (not even length+crc complete) also truncates.
    with open(path, "ab") as fh:
        fh.write(b"\x07")
    wal = WriteAheadLog(path)
    assert [c.revision for c in wal.commits] == [1]
    wal.close()


def test_wal_bit_flip_is_fatal(tmp_path):
    path = tmp_path / "wal.log"
    wal = WriteAheadLog(path)
    wal.append(_commit(1, [0], key="k", response={"deleted": 1}))
    wal.append(_commit(2, [1]))
    wal.close()

    raw = bytearray(open(path, "rb").read())
    raw[len(raw) // 2] ^= 0x10  # flip one bit inside acknowledged history
    open(path, "wb").write(bytes(raw))

    with pytest.raises(CorruptStateError):
        WriteAheadLog(path)


def test_wal_rejects_foreign_file_and_bad_lengths(tmp_path):
    path = tmp_path / "wal.log"
    path.write_bytes(b"not a wal at all, definitely")
    with pytest.raises(CorruptStateError):
        WriteAheadLog(path)

    path2 = tmp_path / "wal2.log"
    wal = WriteAheadLog(path2)
    wal.close()
    with open(path2, "ab") as fh:  # implausible declared length = corruption
        fh.write(struct.pack("<II", 1 << 31, 0) + b"x" * 64)
    with pytest.raises(CorruptStateError):
        WriteAheadLog(path2)


def test_wal_revisions_must_increase(tmp_path):
    wal = WriteAheadLog(tmp_path / "wal.log")
    wal.append(_commit(3, [0]))
    with pytest.raises(ValidationError):
        wal.append(_commit(3, [1]))
    with pytest.raises(ValidationError):
        wal.append(_commit(2, [1]))
    wal.close()

    # A log whose recorded revisions regress (two overlapping writers)
    # is rejected at open, not silently replayed.
    path = tmp_path / "regress.log"
    wal = WriteAheadLog(path)
    wal.append(_commit(5, [0]))
    wal.close()
    payload = _commit(4, [1]).to_payload()
    with open(path, "ab") as fh:
        fh.write(struct.pack("<II", len(payload), zlib.crc32(payload)) + payload)
    with pytest.raises(CorruptStateError):
        WriteAheadLog(path)


# ----------------------------------------------------------------------
# snapshots


def test_snapshot_roundtrip(tmp_path):
    path = tmp_path / "snap"
    values = np.array([[5e-324, 1.0], [1.0, 1.0], [0.25, -0.25]])
    idem = {"key-1": {"indices": [3], "revision": 7}}
    profile = {"schema": 1, "chunk_bytes": 12345}
    write_snapshot(path, values, 7, idempotency=idem, profile=profile)
    snap = load_snapshot(path)
    assert snap.revision == 7
    assert snap.values.tobytes() == values.tobytes()
    assert snap.idempotency == idem
    assert snap.profile == profile


@pytest.mark.parametrize("where", ["magic", "header", "body", "truncate"])
def test_snapshot_corruption_detected(tmp_path, where):
    path = tmp_path / "snap"
    write_snapshot(path, np.ones((4, 2)), 1)
    raw = bytearray(path.read_bytes())
    if where == "magic":
        raw[0] ^= 0xFF
    elif where == "header":
        raw[14] ^= 0x01
    elif where == "body":
        raw[-3] ^= 0x01
    else:
        raw = raw[:-5]
    path.write_bytes(bytes(raw))
    with pytest.raises(CorruptStateError):
        load_snapshot(path)


def test_store_falls_back_to_older_snapshot(tmp_path):
    store = DurableStore(tmp_path, keep_snapshots=2).open()
    older = np.full((3, 2), 0.25)
    store.snapshot(older, 5)
    newer = np.full((3, 2), 0.75)
    store.snapshot(newer, 9)
    # Corrupt the newest snapshot: recovery must use revision 5.
    newest = max(
        p for p in os.listdir(tmp_path) if p.startswith("snapshot-")
    )
    raw = bytearray((tmp_path / newest).read_bytes())
    raw[-1] ^= 0xFF
    (tmp_path / newest).write_bytes(bytes(raw))
    store.close()

    store = DurableStore(tmp_path).open()
    snap, commits = store.load()
    assert snap.revision == 5 and snap.values.tobytes() == older.tobytes()
    store.close()


def test_store_refuses_unanchored_wal(tmp_path):
    """No snapshot + a WAL that does not start at revision 1 = no base."""
    store = DurableStore(tmp_path).open()
    store._wal.append(_commit(4, [0]))
    store.close()
    store = DurableStore(tmp_path).open()
    with pytest.raises(CorruptStateError):
        store.load()
    store.close()


def test_snapshot_truncates_wal_and_prunes(tmp_path):
    store = DurableStore(tmp_path, keep_snapshots=2).open()
    store._wal.append(_commit(1, [0], key="a", response={"x": 1}))
    assert store.wal_dirty
    for rev in (1, 2, 3):
        store.snapshot(np.ones((2, 2)) * rev, rev)
    assert not store.wal_dirty
    snaps = [p for p in os.listdir(tmp_path) if p.startswith("snapshot-")]
    assert len(snaps) == 2  # oldest pruned
    store.close()


# ----------------------------------------------------------------------
# the lock


def test_lock_conflict_and_stale_reclaim(tmp_path):
    store = DurableStore(tmp_path).open()
    # A live holder blocks a second open — liveness is the flock itself,
    # not the pid written inside the file.
    with pytest.raises(DataDirLockedError):
        DurableStore(tmp_path).open()
    # Doctoring the pid content changes nothing while the flock is held:
    # it is diagnostic only.
    (tmp_path / "LOCK").write_bytes(b"1\n")
    with pytest.raises(DataDirLockedError):
        DurableStore(tmp_path).open()

    # A dead holder's flock vanished with it (abandon() closes the fd the
    # way SIGKILL would): reclaimed silently even though the stale pid
    # file is still on disk.
    store.abandon()
    assert (tmp_path / "LOCK").exists()
    store = DurableStore(tmp_path).open()
    assert (tmp_path / "LOCK").read_bytes().split()[0] == str(os.getpid()).encode()
    store.close()
    assert not (tmp_path / "LOCK").exists()


# ----------------------------------------------------------------------
# recovery replay (bit-identity, hypothesis-pinned)


@st.composite
def churn_case(draw):
    n0 = draw(st.integers(min_value=5, max_value=16))
    d = draw(st.integers(min_value=2, max_value=3))
    scale = draw(st.sampled_from([1.0, 1e-300, 1e150]))
    grid = st.integers(min_value=-2, max_value=2)
    base = draw(
        st.lists(
            st.lists(grid, min_size=d, max_size=d), min_size=n0, max_size=n0
        )
    )
    matrix = np.asarray(base, dtype=np.float64) * scale
    n_ops = draw(st.integers(min_value=1, max_value=5))
    ops = []
    n = n0
    for _ in range(n_ops):
        if n <= 3 or draw(st.booleans()):
            m = draw(st.integers(min_value=1, max_value=4))
            rows = draw(
                st.lists(
                    st.lists(grid, min_size=d, max_size=d), min_size=m, max_size=m
                )
            )
            ops.append(("insert", np.asarray(rows, dtype=np.float64) * scale))
            n += m
        else:
            count = draw(st.integers(min_value=1, max_value=min(3, n - 3)))
            idx = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            ops.append(("delete", sorted(idx)))
            n -= count
    snapshot_after = draw(st.integers(min_value=0, max_value=len(ops)))
    crash_after = draw(st.integers(min_value=snapshot_after, max_value=len(ops)))
    tear_tail = draw(st.booleans())
    return matrix, ops, snapshot_after, crash_after, tear_tail


def _apply(engine, op):
    kind, payload = op
    if kind == "insert":
        engine.insert_rows(payload)
    else:
        engine.delete_rows(payload)
    engine.compact()


@settings(max_examples=30, deadline=None)
@given(case=churn_case())
def test_recovery_bit_identical_to_uninterrupted(case):
    matrix, ops, snapshot_after, crash_after, tear_tail = case
    with tempfile.TemporaryDirectory() as td:
        # The never-crashed oracle lives through every mutation.
        oracle = ScoreEngine(matrix)
        oracle_view = MDRCView(oracle, 2)

        # The durable engine logs each mutation; "crash" = stop logging
        # after `crash_after` ops (+ optionally a torn half-record).
        store = DurableStore(td).open()
        engine = ScoreEngine(matrix)
        store.attach(engine)
        idem = {}
        for i, op in enumerate(ops):
            _apply(oracle, op)
            if i < crash_after:
                _apply(engine, op)
                key = f"op-{i}"
                response = {"revision": engine.revision}
                idem[key] = response
                store.commit(key, response, engine.revision)
                if i + 1 == snapshot_after:
                    store.snapshot(
                        engine.values, engine.revision, idempotency=dict(idem)
                    )
        engine.close()
        store.abandon()  # the crash: WAL untruncated, lock left behind
        if tear_tail:
            with open(os.path.join(td, "wal.log"), "ab") as fh:
                fh.write(struct.pack("<II", 64, 0) + b"\x01\x02")

        # Recovery: snapshot + replay, with a maintained view attached
        # *before* replay so the delta events drive its repair path.
        store = DurableStore(td).open()
        snap, commits = store.load()
        recovered = ScoreEngine(matrix if snap is None else snap.values)
        if snap is not None:
            recovered.revision = snap.revision
        view = MDRCView(recovered, 2)
        idem2 = dict(snap.idempotency) if snap is not None else {}
        replay_commits(recovered, commits, idempotency=idem2)
        store.attach(recovered)

        # The recovered engine now sits exactly where the oracle sat
        # after `crash_after` ops; apply the rest to both and compare.
        for i, op in enumerate(ops[crash_after:], start=crash_after):
            _apply(recovered, op)
            store.commit(f"op-{i}", {"revision": recovered.revision},
                         recovered.revision)

        assert recovered.revision == oracle.revision
        assert recovered.values.tobytes() == oracle.values.tobytes()
        assert idem2 == {f"op-{i}": {"revision": r + 1}
                         for i, r in enumerate(range(crash_after))}
        rng = np.random.default_rng(0)
        W = rng.random((4, matrix.shape[1]))
        got, want = recovered.topk_batch(W, 2), oracle.topk_batch(W, 2)
        assert np.array_equal(got.order, want.order)
        assert np.array_equal(got.members, want.members)
        subset = [0, min(1, recovered.n - 1)]
        assert np.array_equal(
            recovered.rank_of_best_batch(W, subset),
            oracle.rank_of_best_batch(W, subset),
        )
        # Maintained through replay == maintained through the real run.
        assert list(view.refresh().indices) == list(oracle_view.refresh().indices)

        store.close()
        recovered.close()
        oracle.close()


def test_replay_detects_revision_gap(tmp_path):
    matrix = np.eye(4)
    engine = ScoreEngine(matrix)
    with pytest.raises(CorruptStateError):
        replay_commits(engine, [_commit(3, [0])])  # engine is at revision 0
    engine.close()


def test_recovery_under_fault_injector(tmp_path):
    """An installed injector (crash/corrupt faults in the engine's
    parallel layer) must not break recovery: the resilience ladder
    absorbs the faults and the recovered state is still bit-identical."""
    rng = np.random.default_rng(3)
    matrix = rng.random((60, 3))
    store = DurableStore(tmp_path).open()
    engine = ScoreEngine(matrix)
    store.attach(engine)
    for i in range(4):
        engine.insert_rows(rng.random((2, 3)))
        engine.compact()
        store.commit(f"k{i}", {"revision": engine.revision}, engine.revision)
    final = engine.values.copy()
    engine.close()
    store.abandon()

    with injected(FaultInjector(seed=5, crash=0.3, corrupt=0.2, max_faults=4)):
        store = DurableStore(tmp_path).open()
        snap, commits = store.load()
        recovered = ScoreEngine(matrix if snap is None else snap.values)
        if snap is not None:
            recovered.revision = snap.revision
        replay_commits(recovered, commits)
        assert recovered.values.tobytes() == final.tobytes()
        assert recovered.revision == 4
        store.close()
        recovered.close()


def test_duplicate_idempotency_keys_keep_first_response():
    """replay_commits fills the key table from the log; the server layer
    consults it before applying, so a duplicate key's stored response is
    what a retry receives (covered end-to-end in tests/serve)."""
    matrix = np.eye(4)
    engine = ScoreEngine(matrix)
    commits = [
        _commit(1, [0], key="dup", response={"deleted": 1, "revision": 1}),
        _commit(2, [0], key="other", response={"deleted": 1, "revision": 2}),
    ]
    idem = {}
    replay_commits(engine, commits, idempotency=idem)
    assert idem["dup"] == {"deleted": 1, "revision": 1}
    assert set(idem) == {"dup", "other"}
    engine.close()


# ----------------------------------------------------------------------
# PR 10 satellites: flock race, prune durability, record framing fields


def test_concurrent_stale_reclaim_single_winner(tmp_path):
    """Two racers reclaiming a dead holder's LOCK serialize on the flock:
    exactly one wins, the loser gets DataDirLockedError — never two live
    stores on one WAL (the pre-flock pid-probe protocol could admit
    both when the probe and the unlink interleaved)."""
    import threading

    DurableStore(tmp_path).open().abandon()  # stale LOCK left on disk
    assert (tmp_path / "LOCK").exists()

    barrier = threading.Barrier(2)
    outcomes: list[tuple[int, object]] = []
    lock = threading.Lock()

    def race(tag: int) -> None:
        store = DurableStore(tmp_path)
        barrier.wait()
        try:
            store.open()
            with lock:
                outcomes.append((tag, store))
        except DataDirLockedError as exc:
            with lock:
                outcomes.append((tag, exc))

    threads = [threading.Thread(target=race, args=(i,)) for i in range(2)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()

    winners = [s for _, s in outcomes if isinstance(s, DurableStore)]
    losers = [e for _, e in outcomes if isinstance(e, DataDirLockedError)]
    assert len(winners) == 1 and len(losers) == 1
    # The loser can reclaim normally once the winner releases.
    winners[0].close()
    store = DurableStore(tmp_path).open()
    store.close()


def test_release_vs_reclaim_inode_race(tmp_path):
    """A reclaimer that opened the doomed LOCK inode just before the
    holder's unlink must detect the path/inode mismatch and retry
    against the live path instead of holding a lock on a dead inode."""
    holder = DurableStore(tmp_path).open()
    # Simulate the racer's first step: an fd opened on the soon-doomed
    # inode before the holder releases.
    import fcntl as _fcntl

    stale_fd = os.open(tmp_path / "LOCK", os.O_RDWR)
    holder.close()  # unlinks the path, then drops the flock
    # The racer's flock on the dead inode now succeeds...
    _fcntl.flock(stale_fd, _fcntl.LOCK_EX | _fcntl.LOCK_NB)
    # ...but a fresh open() takes the *live* path regardless, and the
    # dead-inode lock does not block it.
    store = DurableStore(tmp_path).open()
    assert os.fstat(stale_fd).st_ino != os.stat(tmp_path / "LOCK").st_ino
    os.close(stale_fd)
    store.close()


def test_snapshot_prune_fsyncs_directory(tmp_path, monkeypatch):
    """The unlinks of pruned snapshots are made durable with a directory
    fsync — and only after the unlinks landed, so a machine crash cannot
    resurrect a newer-named stale snapshot that would shadow real state."""
    import repro.engine.wal as wal_mod

    calls: list[tuple[str, tuple[str, ...]]] = []
    real = wal_mod._fsync_dir

    def recording(directory):
        snaps = tuple(
            sorted(n for n in os.listdir(directory) if n.startswith("snapshot-"))
        )
        calls.append((os.path.realpath(directory), snaps))
        real(directory)

    monkeypatch.setattr(wal_mod, "_fsync_dir", recording)
    store = DurableStore(tmp_path, keep_snapshots=1).open()
    for rev in (1, 2, 3):
        store.snapshot(np.ones((2, 2)) * rev, rev)
    store.close()

    pruning = [
        snaps
        for d, snaps in calls
        if d == os.path.realpath(tmp_path) and len(snaps) == 1
    ]
    # Snapshots 2 and 3 each pruned a predecessor; at fsync time the
    # directory already held only the survivor.
    assert pruning[-1] == ("snapshot-0000000000000003.snap",)
    assert len(pruning) >= 2


def test_commit_meta_and_snapshot_extra_roundtrip(tmp_path):
    """Caller-defined framing survives the disk: Commit.meta rides the
    WAL record and Snapshot.extra rides the snapshot header (the sharded
    router's intent/commit frames and shard map depend on both)."""
    store = DurableStore(tmp_path).open()
    meta = {"phase": "intent", "op": "insert", "fleet": 3}
    store.commit(
        "k1",
        {"n": 5},
        1,
        events=((np.asarray([2], dtype=np.int64), np.zeros((1, 2))),),
        meta=meta,
    )
    store.commit("k2", None, 2, events=((np.empty(0, dtype=np.int64), np.zeros((0, 2))),))
    extra = {"shards": 2, "fleet_revision": 7, "shard_revisions": [3, 4]}
    path = store.snapshot(np.eye(3), 2, idempotency={"k1": {"n": 5}}, extra=extra)
    snap = load_snapshot(path)
    assert snap.extra == extra
    assert snap.idempotency == {"k1": {"n": 5}}
    store.close()

    store = DurableStore(tmp_path).open()
    # Records below the snapshot watermark were truncated; re-log one
    # with meta and reload to check the frame round-trips bit-exactly.
    store.commit("k3", {"ok": True}, 3, events=(), meta={"phase": "commit", "aborted": True})
    store.close()
    store = DurableStore(tmp_path).open()
    snap, commits = store.load()
    assert snap.extra == extra
    assert [c.meta for c in commits] == [{"phase": "commit", "aborted": True}]
    assert commits[0].key == "k3" and commits[0].response == {"ok": True}
    store.close()
