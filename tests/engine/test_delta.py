"""Property and unit tests for the incremental row-update layer.

The load-bearing property: after ANY sequence of ``insert_rows`` /
``delete_rows`` calls (interleaved with queries or not), a long-lived
engine answers every query **bit-identically** to a fresh engine built
on the mutated matrix — on clean data, tie-dense data, duplicate rows,
denormal scales, and inserts that escape the quantized tier's
per-attribute envelope.  Alongside: unit coverage for the journal
semantics (current-view delete indices, lazy compaction, id
assignment), the explicit cache invalidation (memo, grid gathers, noise
scale, pools), and validation errors.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ScoreEngine
from repro.exceptions import ValidationError
from repro.ranking import sample_functions
from repro.ranking.topk import rank_of, top_k


def _reference_apply(matrix, ops):
    """Replay a mutation sequence on a plain matrix."""
    for kind, payload in ops:
        if kind == "insert":
            matrix = np.vstack([matrix, payload])
        else:
            matrix = np.delete(matrix, payload, axis=0)
    return matrix


def _assert_engine_matches_fresh(engine, matrix, weights, k, subset, **kwargs):
    fresh = ScoreEngine(matrix, **kwargs)
    got = engine.topk_batch(weights, k)
    want = fresh.topk_batch(weights, k)
    assert np.array_equal(got.order, want.order), "top-k order diverged after mutation"
    assert np.array_equal(got.members, want.members), "bitsets diverged after mutation"
    assert np.array_equal(
        engine.rank_of_best_batch(weights, subset),
        fresh.rank_of_best_batch(weights, subset),
    ), "rank counting diverged after mutation"
    assert np.array_equal(engine.score_batch(weights), fresh.score_batch(weights))
    assert np.array_equal(engine.values, matrix)
    # Against the scalar contract directly, not just the fresh engine.
    for i, w in enumerate(weights[:4]):
        assert np.array_equal(got.order[i], top_k(matrix, w, k))


# ----------------------------------------------------------------------
# hypothesis: random mutation sequences stay bit-identical to a rebuild
@st.composite
def mutation_case(draw):
    n0 = draw(st.integers(min_value=4, max_value=28))
    d = draw(st.integers(min_value=2, max_value=4))
    scale = draw(st.sampled_from([1.0, 1e-300, 1e150]))
    # Small integer grids force ties and duplicates through every tier.
    base = draw(
        st.lists(
            st.lists(st.integers(min_value=-3, max_value=3), min_size=d, max_size=d),
            min_size=n0,
            max_size=n0,
        )
    )
    matrix = np.asarray(base, dtype=np.float64) * scale
    n_ops = draw(st.integers(min_value=1, max_value=4))
    ops = []
    n = n0
    for _ in range(n_ops):
        if n <= 2 or draw(st.booleans()):
            m = draw(st.integers(min_value=1, max_value=6))
            rows = draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=-3, max_value=3), min_size=d, max_size=d
                    ),
                    min_size=m,
                    max_size=m,
                )
            )
            ops.append(("insert", np.asarray(rows, dtype=np.float64) * scale))
            n += m
        else:
            count = draw(st.integers(min_value=1, max_value=min(4, n - 2)))
            idx = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            ops.append(("delete", sorted(idx)))
            n -= len(idx)
    query_between = draw(st.booleans())
    k = draw(st.integers(min_value=1, max_value=3))
    return matrix, ops, query_between, k


@settings(max_examples=60, deadline=None)
@given(case=mutation_case(), quantize=st.sampled_from([None, "auto", "int8"]))
def test_mutation_sequence_bit_identical(case, quantize):
    matrix, ops, query_between, k = case
    weights = sample_functions(matrix.shape[1], 12, 3)
    engine = ScoreEngine(matrix, quantize=quantize)
    reference = matrix
    for op in ops:
        kind, payload = op
        if kind == "insert":
            engine.insert_rows(payload)
        else:
            engine.delete_rows(payload)
        reference = _reference_apply(reference, [op])
        if query_between:
            k_eff = min(k, reference.shape[0])
            assert np.array_equal(
                engine.topk_batch(weights, k_eff).order,
                ScoreEngine(reference, quantize=quantize).topk_batch(weights, k_eff).order,
            )
    k_eff = min(k, reference.shape[0])
    subset = [0, reference.shape[0] - 1]
    _assert_engine_matches_fresh(
        engine, reference, weights, k_eff, subset, quantize=quantize
    )


@settings(max_examples=25, deadline=None)
@given(case=mutation_case())
def test_mutation_sequence_float32_engine(case):
    matrix, ops, _, k = case
    weights = sample_functions(matrix.shape[1], 8, 11)
    engine = ScoreEngine(matrix, float32=True)
    engine.topk_batch(weights, min(k, matrix.shape[0]))  # build V32 state
    reference = matrix
    for op in ops:
        kind, payload = op
        if kind == "insert":
            engine.insert_rows(payload)
        else:
            engine.delete_rows(payload)
        reference = _reference_apply(reference, [op])
    k_eff = min(k, reference.shape[0])
    _assert_engine_matches_fresh(
        engine, reference, weights, k_eff, [0], float32=True
    )


# ----------------------------------------------------------------------
# targeted equivalence cases
class TestMutationEquivalence:
    def test_insert_then_query_matches_rebuild(self, rng):
        matrix = rng.random((300, 4))
        weights = sample_functions(4, 50, 0)
        engine = ScoreEngine(matrix)
        engine.topk_batch(weights, 9)  # warm orderings + memo
        extra = rng.random((40, 4))
        ids = engine.insert_rows(extra)
        assert np.array_equal(ids, np.arange(300, 340))
        reference = np.vstack([matrix, extra])
        _assert_engine_matches_fresh(engine, reference, weights, 9, [1, 5, 333])

    def test_delete_uses_current_view_indices(self, rng):
        matrix = rng.random((50, 3))
        engine = ScoreEngine(matrix)
        engine.delete_rows([0, 1])  # rows 0/1 gone; old row 2 is now row 0
        engine.delete_rows([0])  # deletes what was originally row 2
        reference = np.delete(matrix, [0, 1, 2], axis=0)
        engine.compact()  # .values reflects the journal only once settled
        assert np.array_equal(engine.values, reference)
        assert engine.n == 47

    def test_mixed_sequence_with_attribute_orderings(self, rng):
        matrix = rng.random((200, 3))
        engine = ScoreEngine(matrix)
        engine._ensure_orderings()
        engine._build_attribute_orderings()
        weights = sample_functions(3, 40, 2)
        engine.topk_batch(weights, 5)
        extra = rng.random((25, 3))
        engine.insert_rows(extra)
        doomed = rng.choice(225, size=30, replace=False)
        engine.delete_rows(doomed)
        reference = np.delete(np.vstack([matrix, extra]), doomed, axis=0)
        engine.compact()
        assert np.array_equal(engine.values, reference)
        fresh = ScoreEngine(reference)
        fresh._ensure_orderings()
        fresh._build_attribute_orderings()
        got = engine.topk_batch(weights, 5)
        want = fresh.topk_batch(weights, 5)
        assert np.array_equal(got.order, want.order)
        # Internal identity too: the stable merge reproduces the stable
        # argsort bit-for-bit (perm, u and the permuted matrix).
        for o_got, o_want in zip(engine._orderings, fresh._orderings):
            assert np.array_equal(o_got.perm, o_want.perm)
            assert np.array_equal(o_got.u, o_want.u)
            assert np.array_equal(o_got.V, o_want.V)

    def test_duplicate_and_tie_rows_survive_mutation(self):
        matrix = np.repeat(np.arange(12, dtype=np.float64).reshape(6, 2), 3, axis=0)
        weights = sample_functions(2, 20, 5)
        engine = ScoreEngine(matrix)
        engine.topk_batch(weights, 4)
        engine.insert_rows(matrix[:5])  # more duplicates of existing rows
        engine.delete_rows([0, 7, 17])
        reference = np.delete(np.vstack([matrix, matrix[:5]]), [0, 7, 17], axis=0)
        _assert_engine_matches_fresh(engine, reference, weights, 4, [2, 3])

    def test_denormal_scale_mutation(self):
        matrix = np.array(
            [[3e-310, 1e-310], [2e-310, 2e-310], [1e-310, 3e-310], [2.5e-310, 0.0]]
        )
        weights = sample_functions(2, 16, 7)
        engine = ScoreEngine(matrix)
        engine.topk_batch(weights, 2)
        engine.insert_rows(np.array([[2e-310, 2e-310], [4e-310, 1e-311]]))
        engine.delete_rows([1])
        reference = np.delete(
            np.vstack([matrix, [[2e-310, 2e-310], [4e-310, 1e-311]]]), [1], axis=0
        )
        _assert_engine_matches_fresh(engine, reference, weights, 2, [0, 1])

    def test_quantized_envelope_escape_rescales(self, rng):
        matrix = rng.random((400, 4))
        weights = sample_functions(4, 64, 0)
        engine = ScoreEngine(matrix, quantize="int8")
        engine._rank_float_columns = 10**9  # force the quantized screen on
        engine._rank_float_fallbacks = 10**9
        engine.rank_of_best_batch(weights, [3, 7])  # builds int8 stores
        level_before = engine._quantizer._state
        big = rng.random((10, 4)) * 100.0  # far outside the [0,1) envelope
        engine.insert_rows(big)
        reference = np.vstack([matrix, big])
        got = engine.rank_of_best_batch(weights, [3, 7])
        level_after = engine._quantizer._state
        assert level_after is not None and level_after is not level_before
        assert np.allclose(
            level_after.scales * level_after.qmax, np.abs(reference).max(axis=0)
        )
        fresh = ScoreEngine(reference, quantize="int8")
        fresh._rank_float_columns = 10**9
        fresh._rank_float_fallbacks = 10**9
        assert np.array_equal(got, fresh.rank_of_best_batch(weights, [3, 7]))
        for j in range(8):
            best = (reference[[3, 7]] @ weights[j]).max()
            assert got[j] == int((reference @ weights[j] > best).sum()) + 1

    def test_in_envelope_insert_keeps_level_and_stores(self, rng):
        matrix = rng.random((400, 4))
        weights = sample_functions(4, 64, 0)
        engine = ScoreEngine(matrix, quantize="int8")
        engine._rank_float_columns = 10**9
        engine._rank_float_fallbacks = 10**9
        engine.rank_of_best_batch(weights, [3, 7])
        level_before = engine._quantizer._state
        engine.insert_rows(rng.random((10, 4)) * 0.5)  # safely inside
        engine.delete_rows([0, 100])
        engine.compact()
        assert engine._quantizer._state is level_before, "level needlessly rebuilt"
        reference = np.delete(np.vstack([matrix, engine.values[-10:]]), [0, 100], axis=0)
        fresh = ScoreEngine(reference, quantize="int8")
        fresh._rank_float_columns = 10**9
        fresh._rank_float_fallbacks = 10**9
        assert np.array_equal(
            engine.rank_of_best_batch(weights, [3, 7]),
            fresh.rank_of_best_batch(weights, [3, 7]),
        )


# ----------------------------------------------------------------------
# journal mechanics, invalidation and validation
class TestJournalSemantics:
    def test_mutations_are_lazy_until_query(self, rng):
        matrix = rng.random((60, 3))
        engine = ScoreEngine(matrix)
        engine.insert_rows(rng.random((5, 3)))
        engine.delete_rows([2])
        assert engine._dirty_rows and engine.stats["compactions"] == 0
        assert engine.n == 64  # logical size updates eagerly
        engine.top_k(np.ones(3), 3)
        assert not engine._dirty_rows and engine.stats["compactions"] == 1

    def test_insert_then_delete_of_same_rows_is_noop(self, rng):
        matrix = rng.random((40, 3))
        engine = ScoreEngine(matrix)
        before = engine.values
        ids = engine.insert_rows(rng.random((4, 3)))
        engine.delete_rows(ids)
        engine.compact()
        assert engine.values is before  # untouched: journal cancelled out
        assert engine.n == 40

    def test_cancelled_journal_emits_no_delta_event(self, rng):
        # A journal that cancels out entirely must be invisible to delta
        # subscribers — no spurious delete + insert pair, no revision bump.
        matrix = rng.random((40, 3))
        engine = ScoreEngine(matrix)
        events = []
        engine.subscribe_delta(events.append)
        revision = engine.revision
        ids = engine.insert_rows(rng.random((3, 3)))
        engine.delete_rows(ids)
        engine.compact()
        assert events == []
        assert engine.revision == revision
        assert engine.stats["cancelled_inserts"] == 3

    def test_partial_cancellation_renumbers_surviving_pending(self, rng):
        # Deleting SOME pending inserts cancels exactly those; survivors
        # keep their data and land contiguously at the tail, and the
        # event shows only the net effect.
        matrix = rng.random((30, 3))
        engine = ScoreEngine(matrix)
        events = []
        engine.subscribe_delta(events.append)
        new = rng.random((5, 3))
        ids = engine.insert_rows(new)
        engine.delete_rows([ids[1], ids[3]])
        engine.compact()
        assert len(events) == 1
        event = events[0]
        assert event.deleted_ids.size == 0  # no committed row was touched
        assert np.array_equal(event.inserted_rows, new[[0, 2, 4]])
        assert event.old_n == 30 and event.new_n == 33
        assert np.array_equal(engine.values[30:], new[[0, 2, 4]])
        assert engine.stats["cancelled_inserts"] == 2
        fresh = ScoreEngine(np.vstack([matrix, new[[0, 2, 4]]]))
        w = rng.random(3)
        assert np.array_equal(engine.top_k(w, 6), fresh.top_k(w, 6))

    def test_cancellation_mixed_with_committed_delete(self, rng):
        # One journal holding a committed delete AND a pending-insert
        # cancellation: the event carries only the committed delete and
        # the surviving insert, with a consistent idmap.
        matrix = rng.random((25, 3))
        engine = ScoreEngine(matrix)
        events = []
        engine.subscribe_delta(events.append)
        new = rng.random((2, 3))
        ids = engine.insert_rows(new)
        engine.delete_rows([4, ids[0]])
        engine.compact()
        assert len(events) == 1
        event = events[0]
        assert np.array_equal(event.deleted_ids, [4])
        assert np.array_equal(event.deleted_rows, matrix[[4]])
        assert np.array_equal(event.inserted_rows, new[[1]])
        assert event.old_n == 25 and event.new_n == 25
        survivors = np.setdiff1d(np.arange(25), [4])
        assert np.array_equal(event.idmap[survivors], np.arange(24))
        assert np.array_equal(
            engine.values, np.vstack([np.delete(matrix, [4], axis=0), new[[1]]])
        )

    def test_memo_invalidation_is_explicit(self, rng):
        matrix = rng.random((80, 3))
        engine = ScoreEngine(matrix)
        w = rng.random(3)
        first = engine.top_k(w, 5).copy()
        assert engine.stats["memo_misses"] == 1
        engine.delete_rows([int(first[0])])
        second = engine.top_k(w, 5)
        assert engine.stats["memo_misses"] == 2  # stale entry was dropped
        fresh = ScoreEngine(np.delete(matrix, [int(first[0])], axis=0))
        assert np.array_equal(second, fresh.top_k(w, 5))
        assert not np.array_equal(first, second)

    def test_grid_cache_and_noise_scale_invalidated(self, rng):
        matrix = rng.random((150, 3))
        engine = ScoreEngine(matrix)
        engine._ensure_orderings()
        engine._build_attribute_orderings()
        weights = sample_functions(3, 32, 1)
        engine.rank_of_best_batch(weights, [1, 2])
        assert engine._grid_cache and engine._max_row_norm is not None
        engine.insert_rows(rng.random((3, 3)) * 10.0)
        engine.compact()
        assert not engine._grid_cache and engine._max_row_norm is None
        reference = engine.values.copy()
        assert np.array_equal(
            engine.rank_of_best_batch(weights, [1, 2]),
            ScoreEngine(reference).rank_of_best_batch(weights, [1, 2]),
        )

    def test_mutation_closes_worker_pools(self, rng):
        matrix = rng.random((64, 3))
        engine = ScoreEngine(matrix, n_jobs=2, parallel_min_work=0, backend="thread")
        weights = sample_functions(3, 40, 0)
        engine.topk_batch(weights, 5)
        assert engine._parallel is not None
        engine.insert_rows(rng.random((4, 3)))
        got = engine.topk_batch(weights, 5)  # compacts, rebuilds the pool
        reference = engine.values.copy()
        assert np.array_equal(got.order, ScoreEngine(reference).topk_batch(weights, 5).order)
        engine.close()

    def test_pickle_flushes_journal(self, rng):
        import pickle

        matrix = rng.random((50, 3))
        engine = ScoreEngine(matrix)
        engine.insert_rows(rng.random((5, 3)))
        clone = pickle.loads(pickle.dumps(engine))
        assert not clone._dirty_rows
        assert clone.n == 55 and clone.values.shape == (55, 3)

    def test_rank_of_agrees_with_scalar_after_mutation(self, rng):
        matrix = rng.random((100, 3))
        engine = ScoreEngine(matrix)
        engine.insert_rows(matrix[:7])  # duplicates
        engine.delete_rows([0, 50])
        reference = np.delete(np.vstack([matrix, matrix[:7]]), [0, 50], axis=0)
        weights = sample_functions(3, 16, 9)
        subset = [2, 30]
        got = engine.rank_of_best_batch(weights, subset)
        for j, w in enumerate(weights):
            best_member = max(subset, key=lambda i: reference[i] @ w)
            assert got[j] <= rank_of(reference, w, best_member)
            best = (reference[subset] @ w).max()
            assert got[j] == int((reference @ w > best).sum()) + 1

    def test_validation_errors(self, rng):
        engine = ScoreEngine(rng.random((10, 3)))
        with pytest.raises(ValidationError):
            engine.insert_rows(rng.random((2, 4)))  # wrong width
        with pytest.raises(ValidationError):
            engine.insert_rows(np.array([[np.nan, 0.0, 1.0]]))
        with pytest.raises(ValidationError):
            engine.delete_rows([10])
        with pytest.raises(ValidationError):
            engine.delete_rows(np.arange(10))  # cannot empty the engine
        assert engine.insert_rows(np.empty((0, 3))).size == 0
        assert engine.delete_rows([]) == 0
        assert not engine._dirty_rows

    def test_delete_accepts_boolean_mask(self, rng):
        matrix = rng.random((12, 3))
        engine = ScoreEngine(matrix)
        mask = np.zeros(12, dtype=bool)
        mask[[7, 8, 9]] = True
        assert engine.delete_rows(mask) == 3
        engine.compact()
        assert np.array_equal(engine.values, np.delete(matrix, mask, axis=0))
        with pytest.raises(ValidationError):
            engine.delete_rows(np.array([True, False]))  # wrong-length mask
        with pytest.raises(ValidationError):
            engine.delete_rows(np.array([1.5, 2.0]))  # float indices

    def test_single_row_insert_accepts_1d(self, rng):
        matrix = rng.random((10, 3))
        engine = ScoreEngine(matrix)
        ids = engine.insert_rows(np.array([0.5, 0.25, 0.125]))
        assert list(ids) == [10]
        engine.compact()
        assert engine.values.shape == (11, 3)

    def test_stats_counters(self, rng):
        engine = ScoreEngine(rng.random((20, 3)))
        engine.insert_rows(rng.random((4, 3)))
        engine.delete_rows([1, 2])
        engine.compact()
        assert engine.stats["row_inserts"] == 4
        assert engine.stats["row_deletes"] == 2
        assert engine.stats["compactions"] == 1
