"""Tests for the fault-isolated sharded engine.

The load-bearing property: a :class:`ShardedScoreEngine` — any shard
count, any isolation mode, before and after any mutation sequence,
with or without shard kills and recoveries in between — answers every
query **bit-identically** to an unsharded :class:`ScoreEngine` over the
same rows, on clean data, tie-dense data, duplicate rows and denormal
scales.  Alongside: the robustness machinery itself (supervision,
per-shard durability, intent/commit roll-forward, two-level
exactly-once) and the partial-fleet mutation retry drill the issue
pins: kill a shard mid-fleet-insert, retry the same idempotency key,
assert exactly-once per shard and a bit-identical final matrix.
"""

import os
import signal
import threading

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import FaultInjector, RetryPolicy, ScoreEngine, ShardedScoreEngine
from repro.engine import faults as fault_layer
from repro.engine.sharded import ShardWorker
from repro.exceptions import CorruptStateError, ValidationError, WorkerCrashError

FAST = RetryPolicy(timeout_s=30.0, max_retries=3, backoff_base_s=0.0)


@pytest.fixture
def matrix():
    rng = np.random.default_rng(11)
    values = rng.standard_normal((60, 5))
    values[7] = values[31]  # duplicate rows: ties through every merge
    return values


def _weights(m=7, d=5, seed=3):
    rng = np.random.default_rng(seed)
    return np.abs(rng.standard_normal((m, d)))


def _assert_parity(fleet, oracle, weights, k, subset):
    got = fleet.topk_batch(weights, k)
    want = oracle.topk_batch(weights, k)
    assert np.array_equal(got.order, want.order)
    assert np.array_equal(got.members, want.members)
    assert np.array_equal(
        fleet.rank_of_best_batch(weights, subset),
        oracle.rank_of_best_batch(weights, subset),
    )
    assert np.array_equal(fleet.values, oracle.values)
    assert np.array_equal(fleet.score_batch(weights), oracle.score_batch(weights))


# ----------------------------------------------------------------------
# hypothesis: sharded answers are bit-identical to the unsharded engine


@st.composite
def sharded_case(draw):
    n = draw(st.integers(min_value=4, max_value=24))
    d = draw(st.integers(min_value=2, max_value=4))
    scale = draw(st.sampled_from([1.0, 1e-300, 1e150]))
    # Small integer grids force ties and duplicates through every tier.
    base = draw(
        st.lists(
            st.lists(st.integers(min_value=-3, max_value=3), min_size=d, max_size=d),
            min_size=n,
            max_size=n,
        )
    )
    matrix = np.asarray(base, dtype=np.float64) * scale
    shards = draw(st.integers(min_value=1, max_value=min(4, n)))
    m = draw(st.integers(min_value=1, max_value=5))
    weights = draw(
        st.lists(
            st.lists(st.integers(min_value=-3, max_value=3), min_size=d, max_size=d),
            min_size=m,
            max_size=m,
        )
    )
    k = draw(st.integers(min_value=1, max_value=n))
    subset_size = draw(st.integers(min_value=1, max_value=min(4, n)))
    subset = draw(
        st.lists(
            st.integers(min_value=0, max_value=n - 1),
            min_size=subset_size,
            max_size=subset_size,
            unique=True,
        )
    )
    n_ops = draw(st.integers(min_value=0, max_value=3))
    ops = []
    live = n
    for _ in range(n_ops):
        if live <= 3 or draw(st.booleans()):
            rows = draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=-3, max_value=3),
                        min_size=d,
                        max_size=d,
                    ),
                    min_size=1,
                    max_size=4,
                )
            )
            ops.append(("insert", np.asarray(rows, dtype=np.float64) * scale))
            live += len(rows)
        else:
            count = draw(st.integers(min_value=1, max_value=live - 2))
            doomed = draw(
                st.lists(
                    st.integers(min_value=0, max_value=live - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            ops.append(("delete", np.asarray(sorted(doomed), dtype=np.int64)))
            live -= len(doomed)
    return matrix, shards, np.asarray(weights, dtype=np.float64), k, subset, ops


@given(sharded_case())
@settings(max_examples=40, deadline=None)
def test_sharded_bit_identical_to_unsharded(case):
    matrix, shards, weights, k, subset, ops = case
    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=shards, isolation="local", policy=FAST
    )
    try:
        subset_arr = np.asarray(subset, dtype=np.int64)
        if k <= oracle.n:
            _assert_parity(fleet, oracle, weights, k, subset_arr)
        for kind, payload in ops:
            if kind == "insert":
                ids_o = oracle.insert_rows(payload)
                oracle.compact()
                ids_f = fleet.insert_rows(payload)
                assert np.array_equal(ids_o, ids_f)
            else:
                oracle.delete_rows(payload)
                oracle.compact()
                fleet.delete_rows(payload)
            assert oracle.revision == fleet.revision
        k2 = min(k, oracle.n)
        subset2 = subset_arr[subset_arr < oracle.n]
        if subset2.size == 0:
            subset2 = np.asarray([0], dtype=np.int64)
        _assert_parity(fleet, oracle, weights, k2, subset2)
    finally:
        fleet.close()
        oracle.close()


# ----------------------------------------------------------------------
# construction and validation


def test_validation_errors(matrix):
    with pytest.raises(ValidationError):
        ShardedScoreEngine(matrix, shards=0, isolation="local")
    with pytest.raises(ValidationError):
        ShardedScoreEngine(matrix, shards=2, isolation="threads")
    with pytest.raises(ValidationError):
        ShardedScoreEngine(matrix[:3], shards=4, isolation="local")
    with pytest.raises(ValidationError):
        ShardedScoreEngine(None, shards=2, isolation="local")
    fleet = ShardedScoreEngine(matrix, shards=2, isolation="local", policy=FAST)
    try:
        with pytest.raises(ValidationError):
            fleet.delete_rows(np.arange(fleet.n))  # fleet must stay non-empty
        with pytest.raises(ValidationError):
            fleet.delete_rows(np.asarray([fleet.n + 3]))
        with pytest.raises(ValidationError):
            fleet.insert_rows(np.ones((2, 3)))  # wrong width
        with pytest.raises(ValidationError):
            fleet.fleet_insert(np.asarray([[1.0, np.nan, 0, 0, 0]]))
    finally:
        fleet.close()


def test_shard_can_empty_but_fleet_cannot(matrix):
    fleet = ShardedScoreEngine(matrix, shards=2, isolation="local", policy=FAST)
    oracle = ScoreEngine(matrix.copy())
    try:
        # Delete every row the first shard owns: legal (the fleet stays
        # non-empty), and the emptied shard keeps serving empty results.
        doomed = np.flatnonzero(fleet._owner == 0)
        fleet.delete_rows(doomed)
        oracle.delete_rows(doomed)
        oracle.compact()
        W = _weights()
        _assert_parity(fleet, oracle, W, 5, np.asarray([0, 1]))
        # The next insert lands on the emptied shard (smallest first).
        rng = np.random.default_rng(0)
        rows = rng.standard_normal((3, matrix.shape[1]))
        fleet.insert_rows(rows)
        oracle.insert_rows(rows)
        oracle.compact()
        assert fleet._members[0].size == 3
        _assert_parity(fleet, oracle, W, 5, np.asarray([0, 1]))
    finally:
        fleet.close()
        oracle.close()


# ----------------------------------------------------------------------
# exactly-once keyed mutations


def test_keyed_mutations_are_exactly_once(matrix):
    fleet = ShardedScoreEngine(matrix, shards=3, isolation="local", policy=FAST)
    try:
        rows = np.random.default_rng(1).standard_normal((2, matrix.shape[1]))
        first = fleet.fleet_insert(rows, key="ins")
        replay = fleet.fleet_insert(rows, key="ins")
        assert not first["replayed"] and replay["replayed"]
        assert first["indices"] == replay["indices"]
        assert fleet.n == matrix.shape[0] + 2  # applied once

        gone = fleet.fleet_delete(np.asarray([0, 5]), key="del")
        again = fleet.fleet_delete(np.asarray([0, 5]), key="del")
        assert gone["deleted"] == 2 and again["replayed"]
        assert fleet.n == matrix.shape[0]  # applied once
        # A replayed delete is served from the key table even though its
        # indices no longer validate against today's matrix.
        assert fleet.fleet_delete(np.asarray([10 ** 6]), key="del")["replayed"]
        assert fleet.stats["idempotent_replays"] == 3
    finally:
        fleet.close()


# ----------------------------------------------------------------------
# durability: restart, per-shard recovery, roll-forward


def test_restart_from_data_dir_bit_identical(matrix, tmp_path):
    W = _weights()
    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=3, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    rows = np.random.default_rng(2).standard_normal((4, matrix.shape[1]))
    fleet.fleet_insert(rows, key="a")
    fleet.fleet_delete(np.asarray([1, 17, 40]), key="b")
    oracle.insert_rows(rows)
    oracle.delete_rows(np.asarray([1, 17, 40]))
    oracle.compact()
    fleet.abandon()  # crash: no final snapshots, WAL suffixes left dirty

    rebooted = ShardedScoreEngine(
        shards=3, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        assert rebooted.revision == 2
        _assert_parity(rebooted, oracle, W, 6, np.asarray([0, 2, 9]))
        # The fleet key table survived the crash too.
        assert rebooted.fleet_delete(np.asarray([1, 17, 40]), key="b")["replayed"]
    finally:
        rebooted.close()
        oracle.close()


def test_local_shard_kill_recovers_from_own_store(matrix, tmp_path):
    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    try:
        W = _weights()
        fleet.insert_rows(np.ones((1, matrix.shape[1])))
        oracle.insert_rows(np.ones((1, matrix.shape[1])))
        oracle.compact()
        fleet._supervisor.hosts[0].kill()  # abandon the worker, store intact
        assert fleet.supervisor_states() == ["serving", "serving"]  # not yet noticed
        _assert_parity(fleet, oracle, W, 5, np.asarray([0, 3]))
        assert fleet.stats["shard_recoveries"] == 1
        assert fleet.supervisor_states() == ["serving", "serving"]
    finally:
        fleet.close()
        oracle.close()


def test_storeless_local_kill_is_typed_error_never_partial(matrix):
    fleet = ShardedScoreEngine(matrix, shards=2, isolation="local", policy=FAST)
    try:
        fleet._supervisor.hosts[1].kill()
        with pytest.raises(WorkerCrashError):
            fleet.topk_batch(_weights(), 4)
        assert fleet.supervisor_states()[1] == "dead"
    finally:
        fleet.close()


def test_roll_forward_completes_insert_after_router_crash(matrix, tmp_path):
    """Crash window: shard committed the keyed insert, router died before
    its commit frame.  Boot must roll the intent forward — complete the
    mutation, register the key — and end bit-identical to the oracle."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    rows = np.random.default_rng(3).standard_normal((3, matrix.shape[1]))

    def die(_rows):
        raise RuntimeError("router crashed after the shard commit")

    fleet._ref.insert_rows = die
    with pytest.raises(RuntimeError):
        fleet.fleet_insert(rows, key="K")
    fleet.abandon()

    oracle = ScoreEngine(matrix.copy())
    oracle.insert_rows(rows)
    oracle.compact()
    rebooted = ShardedScoreEngine(
        shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        assert np.array_equal(rebooted.values, oracle.values)
        assert rebooted.revision == 1
        replay = rebooted.fleet_insert(rows, key="K")
        assert replay["replayed"]  # rolled forward, so the retry replays
        assert np.array_equal(rebooted.values, oracle.values)
        W = _weights()
        assert np.array_equal(
            rebooted.topk_batch(W, 5).order, oracle.topk_batch(W, 5).order
        )
    finally:
        rebooted.close()
        oracle.close()


def test_roll_forward_aborts_insert_the_shard_never_saw(matrix, tmp_path, monkeypatch):
    """Crash window: intent frame landed, the target shard never
    committed.  Boot must abort (the mutation was never acknowledged and
    exists nowhere durable) and a client retry applies it fresh."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    monkeypatch.setattr(
        ShardWorker,
        "insert",
        lambda self, rows, key=None: (_ for _ in ()).throw(
            RuntimeError("shard lost the request")
        ),
    )
    rows = np.random.default_rng(4).standard_normal((2, matrix.shape[1]))
    with pytest.raises(RuntimeError):
        fleet.fleet_insert(rows, key="K")
    monkeypatch.undo()
    fleet.abandon()

    rebooted = ShardedScoreEngine(
        shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        assert rebooted.revision == 0
        assert np.array_equal(rebooted.values, matrix)  # aborted cleanly
        fresh = rebooted.fleet_insert(rows, key="K")
        assert not fresh["replayed"]  # applies fresh after the abort
        assert rebooted.n == matrix.shape[0] + 2
    finally:
        rebooted.close()


def test_roll_forward_finishes_partial_fleet_delete(matrix, tmp_path):
    """Crash window: a delete spanning both shards committed on shard 0
    but died before shard 1.  Boot re-issues the keyed per-shard deletes
    (shard 0 replays, shard 1 applies) and completes the mutation."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    doomed = np.asarray([2, 3, 40, 45])  # rows on both shards
    assert set(fleet._owner[doomed]) == {0, 1}
    real_call = fleet._supervisor.call
    calls = {"delete": 0}

    def die_on_second_delete(index, method, args, **kwargs):
        if method == "delete":
            calls["delete"] += 1
            if calls["delete"] == 2:
                raise RuntimeError("router crashed between shard deletes")
        return real_call(index, method, args, **kwargs)

    fleet._supervisor.call = die_on_second_delete
    with pytest.raises(RuntimeError):
        fleet.fleet_delete(doomed, key="K")
    fleet.abandon()

    oracle = ScoreEngine(matrix.copy())
    oracle.delete_rows(doomed)
    oracle.compact()
    rebooted = ShardedScoreEngine(
        shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        assert np.array_equal(rebooted.values, oracle.values)
        assert rebooted.fleet_delete(doomed, key="K")["replayed"]
        W = _weights()
        assert np.array_equal(
            rebooted.topk_batch(W, 4).order, oracle.topk_batch(W, 4).order
        )
    finally:
        rebooted.close()
        oracle.close()


# ----------------------------------------------------------------------
# in-process mutation failure: abort / complete / fail-closed


def _cripple(host, methods, error=None):
    """Make a live host's named RPCs fail terminally while probes (status,
    lookup) keep working; returns the original request for un-crippling."""
    real = host.request

    def failing(method, args, timeout_s=None, fault=None):
        if method in methods:
            raise (error or WorkerCrashError)("injected terminal shard failure")
        return real(method, args, timeout_s=timeout_s, fault=fault)

    host.request = failing
    return real


def test_failed_insert_aborts_intent_and_fleet_keeps_serving(matrix, tmp_path):
    """A fleet insert whose shard call exhausts its retry budget before
    the shard ever committed must abort its intent frame in-process: the
    fleet keeps serving untouched, a later mutation does not stack a
    second intent, and the data dir reboots cleanly (no two-intent
    CorruptStateError bricking it)."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    rows = np.random.default_rng(5).standard_normal((2, matrix.shape[1]))
    target = min(range(2), key=lambda s: (fleet._members[s].size, s))
    real = _cripple(fleet._supervisor.hosts[target], ("insert",))
    with pytest.raises(WorkerCrashError):
        fleet.fleet_insert(rows, key="K")
    fleet._supervisor.hosts[target].request = real

    oracle = ScoreEngine(matrix.copy())
    try:
        # Untouched and still serving: the abort consumed the intent.
        W = _weights()
        _assert_parity(fleet, oracle, W, 5, np.asarray([1, 4]))
        # The same key applies fresh (nothing was acknowledged) ...
        fresh = fleet.fleet_insert(rows, key="K")
        assert not fresh["replayed"]
        oracle.insert_rows(rows)
        oracle.compact()
        _assert_parity(fleet, oracle, W, 5, np.asarray([1, 4]))
        fleet.close()
        # ... and the data dir reboots: intent/abort/intent/commit is a
        # valid frame history, not the two-intent corruption signature.
        rebooted = ShardedScoreEngine(
            shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
        )
        try:
            assert np.array_equal(rebooted.values, oracle.values)
            assert rebooted.fleet_insert(rows, key="K")["replayed"]
        finally:
            rebooted.close()
    finally:
        oracle.close()


def test_failed_insert_completes_when_the_shard_commit_landed(matrix, tmp_path):
    """The lost-response window: the shard commits the keyed insert but
    every response is lost (call raises after apply).  The router must
    probe the shard's durable table, finish the mutation, and acknowledge
    it — and a *subsequent different* mutation must not be poisoned by a
    stale auto-key replay (keys are attempt-scoped, not revision-scoped)."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    rng = np.random.default_rng(6)
    rows_a = rng.standard_normal((2, matrix.shape[1]))
    rows_b = rng.standard_normal((3, matrix.shape[1]))
    target = min(range(2), key=lambda s: (fleet._members[s].size, s))
    host = fleet._supervisor.hosts[target]
    real = host.request

    def lost_response(method, args, timeout_s=None, fault=None):
        out = real(method, args, timeout_s=timeout_s, fault=fault)
        if method == "insert":
            raise WorkerCrashError("response lost on the wire")
        return out

    host.request = lost_response
    response = fleet.fleet_insert(rows_a)  # auto-keyed, no client key
    assert not response["replayed"]
    assert response["revision"] == 1
    host.request = real

    oracle = ScoreEngine(matrix.copy())
    try:
        oracle.insert_rows(rows_a)
        oracle.compact()
        W = _weights()
        _assert_parity(fleet, oracle, W, 6, np.asarray([0, 9]))
        # The next (different) auto-keyed mutation applies for real on
        # the same shard — a revision-derived key would replay rows_a's
        # stale shard response here and silently diverge.
        fleet.fleet_insert(rows_b)
        oracle.insert_rows(rows_b)
        oracle.compact()
        _assert_parity(fleet, oracle, W, 6, np.asarray([0, 9]))
    finally:
        fleet.close()
        oracle.close()


@pytest.mark.parametrize("snapshot_wal_bytes", [4 * 2**20, 64])
def test_partial_fleet_delete_fails_closed_and_reboot_completes(
    matrix, tmp_path, snapshot_wal_bytes
):
    """A delete that committed on shard 0 but terminally failed on shard 1
    leaves the routing map stale: the fleet must fail closed (every query
    and mutation raises — never a silent wrong merge), close() must NOT
    snapshot past the dangling intent, and the reboot completes the
    mutation exactly-once via roll-forward.  The tiny-WAL-threshold
    variant pins the boot-time snapshot deferral: roll-forward's commit
    frame lands while should_snapshot() is already true, before the
    reference engine exists."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
        snapshot_wal_bytes=snapshot_wal_bytes,
    )
    doomed = np.asarray([2, 3, 40, 45])  # rows on both shards
    assert set(fleet._owner[doomed]) == {0, 1}
    _cripple(fleet._supervisor.hosts[1], ("delete",))
    with pytest.raises(WorkerCrashError):
        fleet.fleet_delete(doomed)  # auto-keyed: roll-forward needs fkey
    # Failed closed: serving through the stale map would be silently wrong.
    with pytest.raises(CorruptStateError):
        fleet.topk_batch(_weights(), 4)
    with pytest.raises(CorruptStateError):
        fleet.rank_of_best_batch(_weights(), np.asarray([0]))
    with pytest.raises(CorruptStateError):
        fleet.fleet_insert(np.zeros((1, matrix.shape[1])))
    assert "failed" in fleet.durability_stats()
    fleet.close()

    oracle = ScoreEngine(matrix.copy())
    oracle.delete_rows(doomed)
    oracle.compact()
    rebooted = ShardedScoreEngine(
        shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST,
        snapshot_wal_bytes=snapshot_wal_bytes,
    )
    try:
        # Roll-forward re-issued the keyed per-shard deletes: shard 0
        # replayed its commit, shard 1 applied — exactly-once, and the
        # fleet is bit-identical to the uninterrupted oracle.
        assert rebooted.n == matrix.shape[0] - doomed.size
        _assert_parity(rebooted, oracle, _weights(), 4, np.asarray([1, 2]))
    finally:
        rebooted.close()
        oracle.close()


def test_boot_aborts_insert_when_crash_precedes_abort_frame(
    matrix, tmp_path, monkeypatch
):
    """Crash window: the in-process abort itself never lands (router died
    between the shard failure and the abort frame).  Boot still sees the
    dangling intent, probes the shard, and aborts via roll-forward."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="local",
        data_dir=str(tmp_path), policy=FAST,
    )
    monkeypatch.setattr(
        ShardWorker,
        "insert",
        lambda self, rows, key=None: (_ for _ in ()).throw(
            RuntimeError("shard lost the request")
        ),
    )
    fleet._commit_frame = lambda *a, **k: None  # the abort frame never lands
    rows = np.random.default_rng(7).standard_normal((2, matrix.shape[1]))
    with pytest.raises(RuntimeError):
        fleet.fleet_insert(rows, key="K")
    monkeypatch.undo()
    fleet.abandon()

    rebooted = ShardedScoreEngine(
        shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        assert rebooted.revision == 0
        assert np.array_equal(rebooted.values, matrix)  # aborted at boot
        assert not rebooted.fleet_insert(rows, key="K")["replayed"]
    finally:
        rebooted.close()


# ----------------------------------------------------------------------
# process isolation: real crashes, fault injection, the issue's drill


def test_process_shard_kill_mid_insert_retry_is_exactly_once(matrix):
    """The issue's drill: kill one shard mid-fleet-insert (injected
    crash token), let supervision recover and complete it, then retry
    with the same idempotency key — exactly-once per shard, final matrix
    bit-identical to an uninterrupted oracle."""
    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="process",
        policy=RetryPolicy(timeout_s=60.0, max_retries=3, backoff_base_s=0.01),
    )
    try:
        W = _weights()
        assert np.array_equal(
            oracle.topk_batch(W, 5).order, fleet.topk_batch(W, 5).order
        )
        # Hard kill (SIGKILL) one shard: the next query recovers it.
        os.kill(fleet._supervisor.hosts[0].pid, signal.SIGKILL)
        assert np.array_equal(
            oracle.topk_batch(W, 5).order, fleet.topk_batch(W, 5).order
        )
        assert fleet.stats["shard_recoveries"] >= 1

        # Crash token on the next mutation unit: the shard dies mid-insert.
        injector = FaultInjector(seed=0, plan={0: "crash"})
        fault_layer.install(injector)
        try:
            rows = np.random.default_rng(5).standard_normal((3, matrix.shape[1]))
            first = fleet.fleet_insert(rows, key="burst")
        finally:
            fault_layer.uninstall()
        assert injector.injected["crash"] == 1
        oracle.insert_rows(rows)
        oracle.compact()
        retry = fleet.fleet_insert(rows, key="burst")
        assert retry["replayed"] and retry["indices"] == first["indices"]
        assert fleet.n == oracle.n  # applied exactly once
        assert np.array_equal(fleet.values, oracle.values)
        assert np.array_equal(
            oracle.topk_batch(W, 5).order, fleet.topk_batch(W, 5).order
        )
        assert np.array_equal(
            oracle.rank_of_best_batch(W, np.asarray([0, 8])),
            fleet.rank_of_best_batch(W, np.asarray([0, 8])),
        )
    finally:
        fleet.close()
        oracle.close()


def test_broadcast_drains_pipes_after_worker_error(matrix):
    """A worker-propagated error mid-collection must not leave the other
    started shards' responses sitting in their pipes: the next request on
    those hosts would receive the previous call's stale payload (silent
    cross-request result mixing when the shapes happen to line up)."""
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="process",
        policy=RetryPolicy(timeout_s=60.0, max_retries=1, backoff_base_s=0.01),
    )
    try:
        sup = fleet._supervisor
        # Both shards answer "error" (unknown method); before the fix the
        # first raise aborted collection with shard 1's response undrained.
        with pytest.raises(ValidationError):
            sup.broadcast("frobnicate", {0: (), 1: ()})
        status = sup.broadcast("status", {0: (), 1: ()})
        assert status[0]["n"] + status[1]["n"] == matrix.shape[0]
        oracle = ScoreEngine(matrix.copy())
        try:
            W = _weights()
            _assert_parity(fleet, oracle, W, 5, np.asarray([2, 6]))
        finally:
            oracle.close()
    finally:
        fleet.close()


def test_process_hang_and_corrupt_are_contained(matrix):
    oracle = ScoreEngine(matrix.copy())
    fleet = ShardedScoreEngine(
        matrix.copy(), shards=2, isolation="process",
        policy=RetryPolicy(timeout_s=1.0, max_retries=3, backoff_base_s=0.01),
    )
    try:
        W = _weights()
        injector = FaultInjector(seed=0, plan={0: "corrupt", 1: "hang"}, hang_s=5.0)
        fault_layer.install(injector)
        try:
            assert np.array_equal(
                oracle.topk_batch(W, 5).order, fleet.topk_batch(W, 5).order
            )
        finally:
            fault_layer.uninstall()
        stats = fleet.stats
        assert stats["shard_corrupt"] >= 1
        assert stats["shard_timeouts"] >= 1
        assert all(state == "serving" for state in fleet.supervisor_states())
    finally:
        fleet.close()
        oracle.close()


# ----------------------------------------------------------------------
# serving-facade surface


def test_operator_surfaces(matrix, tmp_path):
    fleet = ShardedScoreEngine(
        matrix, shards=2, isolation="local", data_dir=str(tmp_path), policy=FAST
    )
    try:
        status = fleet.shard_status()
        assert [entry["shard"] for entry in status] == [0, 1]
        assert all(entry["state"] == "serving" for entry in status)
        assert sum(entry["rows"] for entry in status) == fleet.n
        durability = fleet.durability_stats()
        assert durability["mode"] == "sharded"
        assert "wal_bytes_since_snapshot" in durability["router"]
        assert "last_snapshot_age_s" in durability["router"]
    finally:
        fleet.close()


def test_submit_and_delta_subscription(matrix):
    fleet = ShardedScoreEngine(matrix, shards=2, isolation="local", policy=FAST)
    try:
        W = _weights()
        future = fleet.submit("topk_batch", W, 4)
        direct = fleet.topk_batch(W, 4)
        assert np.array_equal(future.result(timeout=30).order, direct.order)

        events = []
        fleet.subscribe_delta(events.append)
        fleet.insert_rows(np.zeros((2, matrix.shape[1])))
        assert len(events) == 1 and events[0].inserted_rows.shape == (
            2,
            matrix.shape[1],
        )
        assert threading.active_count() >= 1  # smoke: pool thread alive
    finally:
        fleet.close()


def test_session_sharded_matches_unsharded(matrix):
    from repro.session import Session

    with Session(matrix.copy()) as plain, Session(
        matrix.copy(), shards=2, shard_isolation="local", policy=FAST
    ) as sharded:
        assert sharded.sharded and not plain.sharded
        W = _weights()
        assert np.array_equal(plain.topk(W, 5).order, sharded.topk(W, 5).order)
        assert np.array_equal(
            plain.rank_of_best(W, [0, 4]), sharded.rank_of_best(W, [0, 4])
        )
        want = plain.mdrc(k=6)
        got = sharded.mdrc(k=6)
        assert list(want.indices) == list(got.indices)
