"""Chaos tests for the supervision layer (repro.engine.resilience).

The contract under test: under every injected failure mode — worker
crash, hang past the per-unit timeout, corrupted return payload, shm
allocation OSError — a supervised engine recovers without process death
and returns results *bit-identical* to a fault-free serial run, on every
backend and every rung of the process → thread → serial degradation
ladder.  The fault harness (repro.engine.faults) is deterministic and
seeded, so every scenario here replays exactly.
"""

import json
import os
from pathlib import Path

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import (
    FaultInjector,
    RetryPolicy,
    ScoreEngine,
    TuningProfile,
    get_default_policy,
    set_default_policy,
)
from repro.engine import faults
from repro.engine.resilience import Supervisor
from repro.exceptions import (
    CorruptStateError,
    ExecutionTimeoutError,
    InvalidDataError,
    ValidationError,
    WorkerCrashError,
)
from repro.ranking import sample_functions

# Backoff disabled in most scenarios: the retry *logic* is under test,
# not the sleeping, and CI minutes are precious.
FAST = RetryPolicy(timeout_s=5.0, max_retries=2, backoff_base_s=0.0)


def _data(n=300, d=4, m=48, seed=0):
    rng = np.random.default_rng(seed)
    return rng.random((n, d)), sample_functions(d, m, rng)


def _pair(values, backend, n_jobs=2, policy=FAST, **kwargs):
    serial = ScoreEngine(values)
    fanout = ScoreEngine(
        values, n_jobs=n_jobs, parallel_min_work=0, backend=backend,
        resilience=policy, **kwargs,
    )
    return serial, fanout


@pytest.fixture(autouse=True)
def _no_leaked_injector():
    yield
    faults.uninstall()


# ----------------------------------------------------------------------
# the harness itself
class TestFaultInjector:
    def test_same_seed_same_schedule(self):
        a = FaultInjector(seed=7, crash=0.3, hang=0.2, corrupt=0.2)
        b = FaultInjector(seed=7, crash=0.3, hang=0.2, corrupt=0.2)
        assert [a.draw_unit() for _ in range(64)] == [
            b.draw_unit() for _ in range(64)
        ]

    def test_plan_targets_exact_submissions(self):
        inj = FaultInjector(plan={0: "crash", 2: "corrupt"})
        assert inj.draw_unit() == "crash"
        assert inj.draw_unit() is None
        assert inj.draw_unit() == "corrupt"
        assert inj.draw_unit() is None
        assert inj.injected == {"crash": 1, "hang": 0, "corrupt": 1, "shm": 0}

    def test_max_faults_bounds_injection(self):
        inj = FaultInjector(seed=0, crash=1.0, max_faults=3)
        tokens = [inj.draw_unit() for _ in range(50)]
        assert tokens.count("crash") == 3
        assert all(t is None for t in tokens[3:])

    def test_hang_token_carries_duration(self):
        inj = FaultInjector(plan={0: "hang"}, hang_s=1.5)
        assert inj.draw_unit() == ("hang", 1.5)

    def test_shm_errors_consume_and_stop(self):
        inj = FaultInjector(shm_errors=2)
        for _ in range(2):
            with pytest.raises(OSError):
                inj.check_shm()
        inj.check_shm()  # third allocation succeeds
        assert inj.injected["shm"] == 2

    def test_rate_validation(self):
        with pytest.raises(ValueError):
            FaultInjector(crash=1.5)
        with pytest.raises(ValueError):
            FaultInjector(crash=0.6, hang=0.6)
        with pytest.raises(ValueError):
            FaultInjector(plan={0: "lunch"})

    def test_module_install_scope(self):
        assert faults.active() is None
        with faults.injected(FaultInjector()) as inj:
            assert faults.active() is inj
        assert faults.active() is None
        faults.check("shm")  # no injector installed: must be a no-op


# ----------------------------------------------------------------------
# bit-identity under every failure mode, both pool backends
class TestRecoveryBitIdentity:
    @pytest.mark.parametrize("backend", ["thread", "process"])
    @pytest.mark.parametrize("kind", ["crash", "hang", "corrupt"])
    def test_topk_and_rank_recover(self, backend, kind):
        values, weights = _data()
        serial, fanout = _pair(values, backend)
        injector = FaultInjector(seed=1, **{kind: 0.5}, max_faults=3, hang_s=20.0)
        with fanout, faults.injected(injector):
            a = serial.topk_batch(weights, 7)
            b = fanout.topk_batch(weights, 7)
            ra = serial.rank_of_best_batch(weights, [0, 150, 299])
            rb = fanout.rank_of_best_batch(weights, [0, 150, 299])
        assert injector.total_injected > 0
        assert np.array_equal(a.order, b.order)
        assert np.array_equal(a.members, b.members)
        assert np.array_equal(ra, rb)
        counter = {
            "crash": "worker_crashes", "hang": "timeouts",
            "corrupt": "corrupt_payloads",
        }[kind]
        assert fanout._supervisor.stats[counter] > 0

    @pytest.mark.parametrize("backend", ["thread", "process"])
    def test_score_batch_recovers(self, backend):
        values, weights = _data()
        serial = ScoreEngine(values, chunk_bytes=1)
        fanout = ScoreEngine(
            values, n_jobs=2, parallel_min_work=0, chunk_bytes=1,
            backend=backend, resilience=FAST,
        )
        injector = FaultInjector(seed=2, corrupt=0.5, max_faults=3)
        with fanout, faults.injected(injector):
            assert np.array_equal(
                serial.score_batch(weights), fanout.score_batch(weights)
            )
        assert injector.injected["corrupt"] > 0

    def test_row_chunk_plan_recovers(self):
        # m < 2 * n_jobs forces the "rows" plan (rank_rows work units).
        values, _ = _data(n=900)
        weights = sample_functions(4, 2, 3)
        serial, fanout = _pair(values, "thread")
        injector = FaultInjector(seed=3, corrupt=0.5, max_faults=2)
        with fanout, faults.injected(injector):
            a = serial.topk_batch(weights, 5)
            b = fanout.topk_batch(weights, 5)
        assert np.array_equal(a.order, b.order)

    def test_shm_failure_degrades_to_thread(self):
        values, weights = _data()
        serial, fanout = _pair(values, "process")
        with fanout, faults.injected(FaultInjector(shm_errors=16)):
            a = serial.topk_batch(weights, 7)
            b = fanout.topk_batch(weights, 7)
            assert np.array_equal(a.order, b.order)
            assert fanout._degraded == "thread"
            assert fanout._supervisor.stats["shm_errors"] > 0
            assert fanout._supervisor.stats["degradations"] == 1

    def test_dead_pid_probe_rebuilds_idle_pool(self):
        values, weights = _data()
        serial, fanout = _pair(values, "process")
        with fanout:
            a = fanout.topk_batch(weights, 7)
            # Kill one pool worker between calls — the OOM-killer shape.
            executor = fanout._executors["process"]
            victim = next(iter(executor._pool._processes.values()))
            victim.terminate()
            victim.join()
            assert not executor.workers_alive()
            b = fanout.topk_batch(weights, 7)
            assert np.array_equal(a.order, b.order)
            assert np.array_equal(serial.topk_batch(weights, 7).order, b.order)
            assert fanout._supervisor.stats["pool_rebuilds"] >= 1


# ----------------------------------------------------------------------
# retry bounds, backoff bounds, fail-fast mode
class TestRetryAndBackoff:
    def test_fail_fast_raises_typed_crash_error(self):
        values, weights = _data()
        policy = RetryPolicy(max_retries=1, backoff_base_s=0.0, degrade=False)
        _, fanout = _pair(values, "thread", policy=policy)
        with fanout, faults.injected(FaultInjector(crash=1.0)):
            with pytest.raises(WorkerCrashError):
                fanout.topk_batch(weights, 7)
        # max_retries=1 -> exactly 2 attempts before raising.
        assert fanout._supervisor.stats["worker_crashes"] >= 2

    def test_fail_fast_raises_typed_timeout_error(self):
        values, weights = _data()
        policy = RetryPolicy(
            timeout_s=0.2, max_retries=0, backoff_base_s=0.0, degrade=False
        )
        _, fanout = _pair(values, "thread", policy=policy)
        with fanout, faults.injected(FaultInjector(hang=1.0, hang_s=30.0)):
            with pytest.raises(ExecutionTimeoutError):
                fanout.topk_batch(weights, 7)
        assert fanout._supervisor.stats["timeouts"] >= 1

    def test_backoff_is_bounded_and_recorded(self):
        values, weights = _data()
        policy = RetryPolicy(
            max_retries=2, backoff_base_s=0.01, backoff_max_s=0.04,
            backoff_jitter=0.5, seed=3,
        )
        _, fanout = _pair(values, "thread", policy=policy)
        with fanout, faults.injected(FaultInjector(seed=4, corrupt=0.5, max_faults=4)):
            fanout.topk_batch(weights, 7)
        sup = fanout._supervisor
        assert sup.stats["retries"] > 0
        assert sup.stats["backoff_s"] > 0.0
        # Every sleep is capped at backoff_max_s * (1 + jitter); far
        # fewer sleeps than retries can occur, so this bound is loose.
        cap = policy.backoff_max_s * (1.0 + policy.backoff_jitter)
        assert sup.stats["backoff_s"] <= sup.stats["retries"] * cap

    def test_policy_validation(self):
        with pytest.raises(ValidationError):
            RetryPolicy(timeout_s=0.0)
        with pytest.raises(ValidationError):
            RetryPolicy(max_retries=-1)
        with pytest.raises(ValidationError):
            RetryPolicy(backoff_jitter=1.5)
        with pytest.raises(ValidationError):
            ScoreEngine(np.eye(3), resilience="retry hard")

    def test_default_policy_install(self):
        previous = get_default_policy()
        try:
            set_default_policy(RetryPolicy(timeout_s=9.0, max_retries=5))
            engine = ScoreEngine(np.eye(3))
            assert engine._resilience_policy.timeout_s == 9.0
            assert engine._resilience_policy.max_retries == 5
            with pytest.raises(ValidationError):
                set_default_policy("nope")
        finally:
            set_default_policy(previous)


# ----------------------------------------------------------------------
# the degradation ladder
class TestDegradation:
    def test_process_degrades_and_sticks(self):
        values, weights = _data()
        serial, fanout = _pair(values, "process", policy=FAST)
        with fanout, faults.injected(FaultInjector(crash=1.0)):
            # Unbounded crashes: process pool fails out, then the thread
            # pool (same injector) fails out, and the serial rung —
            # never injected — finishes the call correctly.
            a = fanout.topk_batch(weights, 7)
        assert np.array_equal(serial.topk_batch(weights, 7).order, a.order)
        assert fanout._degraded == "serial"
        assert fanout._supervisor.stats["degradations"] == 2
        assert fanout._supervisor.stats["serial_units"] > 0
        # Sticky: the next (fault-free) call must not touch a pool.
        b = fanout.topk_batch(weights, 7)
        assert np.array_equal(a.order, b.order)
        assert fanout._parallel is None

    def test_thread_backend_degrades_straight_to_serial(self):
        values, weights = _data()
        serial, fanout = _pair(values, "thread", policy=FAST)
        with fanout, faults.injected(FaultInjector(corrupt=1.0)):
            a = fanout.topk_batch(weights, 7)
        assert np.array_equal(serial.topk_batch(weights, 7).order, a.order)
        assert fanout._degraded == "serial"
        assert fanout._supervisor.stats["degradations"] == 1

    def test_degradation_survives_close(self):
        values, weights = _data()
        _, fanout = _pair(values, "thread", policy=FAST)
        with fanout, faults.injected(FaultInjector(corrupt=1.0)):
            fanout.topk_batch(weights, 7)
        fanout.close()
        assert fanout._degraded == "serial"
        assert fanout._parallel_plan(weights.shape[0]) is None

    def test_n_jobs_1_is_a_noop(self):
        values, weights = _data()
        engine = ScoreEngine(values, parallel_min_work=0, resilience=FAST)
        injector = FaultInjector(crash=1.0)
        with faults.injected(injector):
            engine.topk_batch(weights, 7)
        # Serial engines never fan out, so the harness never fires.
        assert injector.draws == 0
        assert engine._supervisor is None
        assert engine.stats["parallel_calls"] == 0


# ----------------------------------------------------------------------
# no leaked shared-memory segments after abnormal teardown
class TestShmHygiene:
    def test_no_dev_shm_leak_after_crash_recovery(self):
        shm_dir = Path("/dev/shm")
        if not shm_dir.is_dir():
            pytest.skip("no /dev/shm on this platform")
        before = {entry.name for entry in shm_dir.iterdir()}
        values, weights = _data()
        fanout = ScoreEngine(
            values, n_jobs=2, parallel_min_work=0, backend="process",
            resilience=FAST,
        )
        with fanout, faults.injected(
            FaultInjector(seed=5, crash=0.5, max_faults=2)
        ):
            fanout.topk_batch(weights, 7)
        fanout.close()
        leaked = {entry.name for entry in shm_dir.iterdir()} - before
        assert not leaked, f"leaked /dev/shm segments: {leaked}"


# ----------------------------------------------------------------------
# seeded-fault hypothesis sweep: any schedule, still bit-identical
class TestSeededFaultSweep:
    @given(
        seed=st.integers(0, 2**16),
        crash=st.floats(0.0, 0.4),
        corrupt=st.floats(0.0, 0.4),
    )
    @settings(max_examples=15, deadline=None)
    def test_any_fault_schedule_is_bit_identical(self, seed, crash, corrupt):
        values, weights = _data(n=120, d=3, m=24, seed=11)
        serial, fanout = _pair(values, "thread", policy=FAST)
        injector = FaultInjector(seed=seed, crash=crash, corrupt=corrupt, max_faults=4)
        try:
            with faults.injected(injector):
                a = serial.topk_batch(weights, 5)
                b = fanout.topk_batch(weights, 5)
            assert np.array_equal(a.order, b.order)
            assert np.array_equal(a.members, b.members)
        finally:
            fanout.close()


# ----------------------------------------------------------------------
# persisted tuning profiles: checksums, atomicity, recovery
class TestProfileIntegrity:
    def test_round_trip_with_checksum(self, tmp_path):
        profile = TuningProfile()
        path = tmp_path / "profile.json"
        profile.save(path)
        payload = json.loads(path.read_text())
        assert "checksum" in payload
        assert TuningProfile.load(path) == profile

    def test_atomic_save_leaves_no_temp_files(self, tmp_path):
        path = tmp_path / "profile.json"
        TuningProfile().save(path)
        TuningProfile().save(path)  # overwrite goes through os.replace too
        assert os.listdir(tmp_path) == ["profile.json"]

    def test_torn_json_raises_typed_error(self, tmp_path):
        path = tmp_path / "profile.json"
        text = TuningProfile().to_json()
        path.write_text(text[: len(text) // 2])
        with pytest.raises(CorruptStateError):
            TuningProfile.load(path)

    def test_checksum_mismatch_raises_typed_error(self, tmp_path):
        path = tmp_path / "profile.json"
        TuningProfile().save(path)
        payload = json.loads(path.read_text())
        payload["chunk_bytes"] = int(payload["chunk_bytes"]) * 2
        path.write_text(json.dumps(payload))
        with pytest.raises(CorruptStateError):
            TuningProfile.load(path)

    def test_legacy_profile_without_checksum_loads(self, tmp_path):
        path = tmp_path / "profile.json"
        profile = TuningProfile()
        payload = json.loads(profile.to_json())
        payload.pop("checksum")
        path.write_text(json.dumps(payload))
        assert TuningProfile.load(path) == profile

    def test_cli_recalibrates_on_corrupt_profile(self, tmp_path, capsys):
        from repro.cli import _resolve_tuning

        path = tmp_path / "profile.json"
        text = TuningProfile().to_json()
        path.write_text(text[: len(text) // 2])
        values = np.random.default_rng(0).random((200, 3))
        profile = _resolve_tuning(str(path), values, n_jobs=None)
        assert isinstance(profile, TuningProfile)
        assert "failed its integrity check" in capsys.readouterr().err
        # The corrupt file was replaced by a loadable, checksummed one.
        assert TuningProfile.load(path) == profile


# ----------------------------------------------------------------------
# journal invariants
class TestJournalIntegrity:
    def test_corrupted_live_array_fails_typed(self):
        engine = ScoreEngine(np.random.default_rng(0).random((50, 3)))
        engine.insert_rows(np.full((2, 3), 0.5))
        # Simulate internal corruption: a live slot beyond the journal.
        engine._live = np.array([0, 1, 999], dtype=np.int64)
        engine.n = 3
        with pytest.raises(CorruptStateError):
            engine.compact()

    def test_unsorted_live_array_fails_typed(self):
        engine = ScoreEngine(np.random.default_rng(0).random((50, 3)))
        engine.delete_rows([4])
        engine._live = engine._live[::-1].copy()
        with pytest.raises(CorruptStateError):
            engine.compact()


# ----------------------------------------------------------------------
# typed input validation at the public boundary
class TestInvalidDataError:
    def test_score_engine_rejects_nan_and_inf(self):
        bad = np.random.default_rng(0).random((10, 3))
        bad[3, 1] = np.nan
        with pytest.raises(InvalidDataError):
            ScoreEngine(bad)
        bad[3, 1] = np.inf
        with pytest.raises(InvalidDataError):
            ScoreEngine(bad)

    def test_score_engine_rejects_non_numeric(self):
        with pytest.raises(InvalidDataError):
            ScoreEngine(np.array([["a", "b"], ["c", "d"]]))

    def test_mdrc_rejects_nan(self):
        from repro.core.mdrc import mdrc

        bad = np.random.default_rng(0).random((20, 3))
        bad[0, 0] = np.nan
        with pytest.raises(InvalidDataError):
            mdrc(bad, 3)

    def test_sample_ksets_rejects_nan(self):
        from repro.geometry.ksets import sample_ksets

        bad = np.random.default_rng(0).random((20, 3))
        bad[5, 2] = np.inf
        with pytest.raises(InvalidDataError):
            sample_ksets(bad, 3, max_draws=5)

    def test_dataset_load_rejects_nan(self, tmp_path):
        from repro.datasets.io import load_csv

        path = tmp_path / "bad.csv"
        path.write_text("a,b\n1.0,2.0\nnan,4.0\n")
        with pytest.raises(InvalidDataError):
            load_csv(path)

    def test_insert_rows_rejects_nan(self):
        engine = ScoreEngine(np.random.default_rng(0).random((10, 3)))
        with pytest.raises(InvalidDataError):
            engine.insert_rows(np.array([[0.1, np.nan, 0.3]]))

    def test_invalid_data_error_is_a_validation_error(self):
        # Back-compat: callers catching ValidationError keep working.
        assert issubclass(InvalidDataError, ValidationError)


# ----------------------------------------------------------------------
# CLI flags
class TestCliResilienceFlags:
    def test_flags_parse_and_install_policy(self):
        from repro.cli import _apply_resilience_flags, build_parser

        parser = build_parser()
        args = parser.parse_args(
            ["represent", "--n", "50", "--timeout", "3.5", "--max-retries", "4"]
        )
        previous = get_default_policy()
        try:
            _apply_resilience_flags(args)
            policy = get_default_policy()
            assert policy.timeout_s == 3.5
            assert policy.max_retries == 4
        finally:
            set_default_policy(previous)

    def test_flags_default_to_noop(self):
        from repro.cli import _apply_resilience_flags, build_parser

        args = build_parser().parse_args(["represent", "--n", "50"])
        previous = get_default_policy()
        _apply_resilience_flags(args)
        assert get_default_policy() is previous


# ----------------------------------------------------------------------
# supervisor internals worth pinning down
class TestSupervisorPayloadValidation:
    def test_structural_validation_catches_garbled_shapes(self):
        values, weights = _data(n=40, d=3, m=8)
        engine = ScoreEngine(values)
        sup = Supervisor(engine, FAST)
        good = np.zeros((4, 3), dtype=np.int64)
        sup._validate("topk", (weights[:4], 3), good)
        for bad in (good[:-1], good.astype(np.float64), "junk", None):
            with pytest.raises(CorruptStateError):
                sup._validate("topk", (weights[:4], 3), bad)
        with pytest.raises(CorruptStateError):
            sup._validate("rank_rows", (weights,), (np.zeros(weights.shape[0]),))
