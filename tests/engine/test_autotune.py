"""Tests for the calibration-based autotuner.

The load-bearing property mirrors the engine-wide exactness contract:
a :class:`TuningProfile` only moves work between tiers, chunk layouts
and pools — ANY profile, including pathological ones (1-byte chunks,
1-row caps, always-on or never-on policies), must leave every query
bit-identical to the default-profile engine and to the scalar path.
Alongside: JSON round-trips, validation, the calibration probe's
output ranges, and the plumbing (engine adoption, worker configs,
consumer ``tune=`` forwarding).
"""

import json

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import ScoreEngine, TuningProfile, calibrate_engine
from repro.exceptions import ValidationError
from repro.ranking import sample_functions
from repro.ranking.topk import top_k

PATHOLOGICAL_PROFILES = [
    # Everything minimal: 1-byte chunks, tiny buffers, immediate policies.
    TuningProfile(
        chunk_bytes=1,
        parallel_min_work=0,
        units_per_worker=1,
        rank_buffer_bytes=1,
        rank_grid_base=1,
        quant_rank_cap=1,
        quant_scalar_promote=1,
        rank_quant_fallback_ratio=0.0,
        rank_quant_min_sample=0,
        backend_escalate_ratio=0.0,
        backend_min_sample=0,
    ),
    # Everything maximal: huge chunks, never-engage policies.
    TuningProfile(
        chunk_bytes=1 << 40,
        parallel_min_work=1 << 60,
        units_per_worker=64,
        rank_buffer_bytes=1 << 34,
        rank_grid_base=4096,
        quant_rank_cap=10**9,
        quant_scalar_promote=10**9,
        rank_quant_fallback_ratio=1.0,
        rank_quant_min_sample=10**9,
        backend_escalate_ratio=1.0,
        backend_min_sample=10**9,
        quant_promote_window=1,
        quant_promote_limit=0.0,
    ),
    # Skewed middle ground with the process pool as the initial backend.
    TuningProfile(
        chunk_bytes=1 << 10,
        rank_grid_base=2,
        quant_rank_cap=3,
        quant_scalar_promote=2,
        initial_backend="process",
        quant_promote_window=2,
        quant_promote_limit=0.5,
    ),
]


def _assert_profile_exact(values, weights, k, subset, profile, **kwargs):
    tuned = ScoreEngine(values, tune=profile, **kwargs)
    default = ScoreEngine(values, **kwargs)
    got = tuned.topk_batch(weights, k)
    want = default.topk_batch(weights, k)
    assert np.array_equal(got.order, want.order), "profile changed top-k results"
    assert np.array_equal(got.members, want.members)
    assert np.array_equal(
        tuned.rank_of_best_batch(weights, subset),
        default.rank_of_best_batch(weights, subset),
    ), "profile changed rank counts"
    for i, w in enumerate(weights[:4]):
        assert np.array_equal(got.order[i], top_k(values, w, k))
    tuned.close()
    default.close()


class TestProfileExactness:
    @pytest.mark.parametrize("profile", PATHOLOGICAL_PROFILES)
    @pytest.mark.parametrize("quantize", [None, "int8"])
    def test_pathological_profiles_bit_identical(self, rng, profile, quantize):
        values = rng.random((150, 3))
        weights = sample_functions(3, 60, 0)
        _assert_profile_exact(values, weights, 7, [2, 9, 100], profile, quantize=quantize)

    @pytest.mark.parametrize("profile", PATHOLOGICAL_PROFILES)
    def test_pathological_profiles_on_degenerate_data(self, profile):
        # Ties, duplicates and denormal scales through every tier.
        values = np.repeat(np.arange(10, dtype=np.float64).reshape(5, 2), 4, axis=0)
        values = values * 1e-310
        weights = sample_functions(2, 40, 1)
        _assert_profile_exact(values, weights, 3, [0, 19], profile)

    @settings(max_examples=20, deadline=None)
    @given(
        chunk_bytes=st.integers(min_value=1, max_value=1 << 30),
        grid=st.integers(min_value=1, max_value=512),
        cap=st.integers(min_value=1, max_value=1 << 20),
        promote=st.integers(min_value=1, max_value=256),
        ratio=st.floats(min_value=0.0, max_value=1.0),
    )
    def test_random_profiles_bit_identical(self, chunk_bytes, grid, cap, promote, ratio):
        profile = TuningProfile(
            chunk_bytes=chunk_bytes,
            rank_grid_base=grid,
            quant_rank_cap=cap,
            quant_scalar_promote=promote,
            rank_quant_fallback_ratio=ratio,
            rank_quant_min_sample=0,
        )
        rng = np.random.default_rng(7)
        values = rng.integers(0, 3, size=(60, 3)).astype(np.float64)
        weights = sample_functions(3, 24, 2)
        _assert_profile_exact(values, weights, 4, [1, 30], profile)

    def test_parallel_backends_with_profile(self, rng):
        values = rng.random((200, 3))
        weights = sample_functions(3, 80, 3)
        profile = TuningProfile(parallel_min_work=0, units_per_worker=2)
        serial = ScoreEngine(values)
        for backend in ("thread", "process"):
            with ScoreEngine(
                values, tune=profile, n_jobs=2, backend=backend
            ) as fanout:
                assert np.array_equal(
                    serial.topk_batch(weights, 6).order,
                    fanout.topk_batch(weights, 6).order,
                ), f"{backend} with profile diverged"


class TestTuningProfile:
    def test_defaults_match_legacy_constants(self):
        profile = TuningProfile()
        assert profile.chunk_bytes == 1 << 26
        assert profile.parallel_min_work == 1 << 23
        assert profile.units_per_worker == 4
        assert profile.rank_buffer_bytes == 1 << 23
        assert profile.rank_grid_base == 128
        assert profile.quant_rank_cap == 256
        assert profile.quant_scalar_promote == 16
        assert profile.rank_quant_fallback_ratio == 0.02
        assert profile.backend_escalate_ratio == 0.05
        assert profile.initial_backend == "thread"

    def test_json_roundtrip(self, tmp_path):
        profile = TuningProfile(
            chunk_bytes=123456, rank_grid_base=99, meta={"note": "hi"}
        )
        path = tmp_path / "profile.json"
        profile.save(path)
        loaded = TuningProfile.load(path)
        assert loaded == profile
        assert loaded.meta == {"note": "hi"}
        payload = json.loads(path.read_text())
        assert payload["schema"] == 1

    def test_rejects_unknown_fields_and_bad_values(self):
        with pytest.raises(ValueError):
            TuningProfile.from_json('{"nonsense": 1}')
        with pytest.raises(ValueError):
            TuningProfile(chunk_bytes=0)
        with pytest.raises(ValueError):
            TuningProfile(rank_quant_fallback_ratio=1.5)
        with pytest.raises(ValueError):
            TuningProfile(initial_backend="carrier-pigeon")
        with pytest.raises(ValidationError):
            ScoreEngine(np.ones((3, 2)), tune="nonsense")

    def test_engine_adopts_profile_knobs(self, rng):
        values = rng.random((50, 3))
        profile = TuningProfile(
            chunk_bytes=8 * 50 * 3,  # 3 columns per chunk
            parallel_min_work=12345,
            quant_promote_window=77,
            quant_promote_limit=0.125,
        )
        engine = ScoreEngine(values, tune=profile)
        assert engine._chunk_cols == 3
        assert engine._parallel_min_work == 12345
        assert engine._quantizer.promote_window == 77
        assert engine._quantizer.promote_limit == 0.125
        # Explicit constructor overrides beat the profile.
        engine = ScoreEngine(values, tune=profile, chunk_bytes=1, parallel_min_work=0)
        assert engine._chunk_cols == 1
        assert engine._parallel_min_work == 0

    def test_worker_config_carries_profile(self, rng):
        profile = TuningProfile(rank_grid_base=64)
        engine = ScoreEngine(rng.random((20, 3)), tune=profile)
        assert engine._worker_config()["tune"] is profile


class TestCalibration:
    def test_calibrate_returns_sane_profile(self, rng):
        values = rng.random((300, 4))
        engine = ScoreEngine(values)
        profile = engine.calibrate(budget_s=0.02)
        assert engine.tuning is profile
        assert profile.meta["calibrated"] and profile.meta["n"] == 300
        assert profile.parallel_min_work >= 1 << 18
        assert 2 <= profile.units_per_worker <= 8
        assert 0.01 <= profile.backend_escalate_ratio <= 0.25
        assert 0.005 <= profile.rank_quant_fallback_ratio <= 0.10
        assert 4 <= profile.quant_scalar_promote <= 64
        assert 64 <= profile.quant_rank_cap <= 2048
        # The profile survives a JSON round-trip with meta intact.
        assert TuningProfile.from_json(profile.to_json()) == profile

    def test_tune_auto_calibrates_on_first_call(self, rng):
        values = rng.random((100, 3))
        weights = sample_functions(3, 30, 0)
        engine = ScoreEngine(values, tune="auto")
        assert engine._tune_pending
        got = engine.topk_batch(weights, 5)
        assert not engine._tune_pending
        assert engine.tuning.meta.get("calibrated")
        want = ScoreEngine(values).topk_batch(weights, 5)
        assert np.array_equal(got.order, want.order)

    def test_calibrated_profile_is_exact(self, rng):
        values = rng.random((120, 3))
        weights = sample_functions(3, 48, 4)
        engine = ScoreEngine(values)
        profile = calibrate_engine(engine, budget_s=0.02)
        _assert_profile_exact(values, weights, 5, [0, 60], profile)

    def test_calibrate_after_mutation_probes_current_matrix(self, rng):
        values = rng.random((80, 3))
        engine = ScoreEngine(values)
        engine.insert_rows(rng.random((20, 3)))
        profile = engine.calibrate(budget_s=0.02)
        assert profile.meta["n"] == 100  # probe saw the mutated matrix


class TestConsumerPlumbing:
    def test_mdrc_accepts_tune(self, rng):
        from repro.core import mdrc

        values = rng.random((120, 3))
        default = mdrc(values, 4)
        tuned = mdrc(values, 4, tune=PATHOLOGICAL_PROFILES[0])
        assert tuned.indices == default.indices

    def test_sample_ksets_accepts_tune(self, rng):
        from repro.geometry.ksets import sample_ksets

        values = rng.random((100, 3))
        default = sample_ksets(values, 5, patience=20, rng=0)
        tuned = sample_ksets(
            values, 5, patience=20, rng=0, tune=PATHOLOGICAL_PROFILES[0]
        )
        assert tuned.ksets == default.ksets and tuned.draws == default.draws

    def test_rank_regret_sampled_accepts_tune(self, rng):
        from repro.evaluation import rank_regret_sampled

        values = rng.random((90, 3))
        default = rank_regret_sampled(values, [1, 2], 200, rng=0)
        tuned = rank_regret_sampled(
            values, [1, 2], 200, rng=0, tune=PATHOLOGICAL_PROFILES[2]
        )
        assert tuned == default

    def test_cli_tuning_profile_roundtrip(self, tmp_path, capsys):
        from repro.cli import main

        path = tmp_path / "tuning.json"
        assert main(
            [
                "represent",
                "--dataset",
                "dot",
                "--n",
                "200",
                "--d",
                "3",
                "--k",
                "0.05",
                "--tuning-profile",
                str(path),
            ]
        ) == 0
        first = capsys.readouterr().out
        assert path.exists()
        loaded = TuningProfile.load(path)
        assert loaded.meta.get("calibrated")
        # Second run loads the file and produces identical output.
        assert main(
            [
                "represent",
                "--dataset",
                "dot",
                "--n",
                "200",
                "--d",
                "3",
                "--k",
                "0.05",
                "--tuning-profile",
                str(path),
            ]
        ) == 0
        assert capsys.readouterr().out == first
