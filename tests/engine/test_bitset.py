"""Unit tests for the packed-bitset substrate."""

import numpy as np
import pytest

from repro.engine import (
    BitsetTable,
    intersect_all,
    pack_indices,
    pack_membership,
    packed_width,
    popcount,
    unpack_indices,
)


class TestPacking:
    def test_roundtrip(self):
        rng = np.random.default_rng(0)
        for n in (1, 7, 8, 9, 63, 64, 65, 200):
            size = int(rng.integers(1, n + 1))
            indices = np.sort(rng.choice(n, size=size, replace=False))
            packed = pack_indices(indices, n)
            assert packed.shape == (packed_width(n),)
            assert np.array_equal(unpack_indices(packed, n), indices)

    def test_pack_membership_matches_rowwise(self):
        rng = np.random.default_rng(1)
        n, m, k = 50, 20, 6
        index_matrix = np.vstack(
            [rng.choice(n, size=k, replace=False) for _ in range(m)]
        )
        packed = pack_membership(index_matrix, n)
        for row in range(m):
            assert np.array_equal(packed[row], pack_indices(index_matrix[row], n))

    def test_popcount(self):
        rng = np.random.default_rng(2)
        n = 77
        rows = []
        sizes = []
        for _ in range(10):
            size = int(rng.integers(1, n))
            rows.append(pack_indices(rng.choice(n, size=size, replace=False), n))
            sizes.append(size)
        stacked = np.stack(rows)
        assert list(popcount(stacked)) == sizes
        assert popcount(rows[0]) == sizes[0]

    def test_intersect_all(self):
        n = 40
        sets = [{1, 5, 9, 30}, {5, 9, 12, 30}, {0, 5, 9, 30, 39}]
        packed = np.stack([pack_indices(np.array(sorted(s)), n) for s in sets])
        common = unpack_indices(intersect_all(packed), n)
        assert set(int(i) for i in common) == {5, 9, 30}


class TestBitsetTable:
    def test_dedup_and_insertion_order(self):
        n = 30
        table = BitsetTable(n)
        a = pack_indices(np.array([1, 2, 3]), n)
        b = pack_indices(np.array([4, 5, 6]), n)
        assert table.add(a) == (0, True)
        assert table.add(b) == (1, True)
        assert table.add(a) == (0, False)
        assert len(table) == 2
        assert a in table
        assert table.frozensets() == [frozenset({1, 2, 3}), frozenset({4, 5, 6})]

    def test_row_and_indices(self):
        n = 16
        table = BitsetTable(n)
        packed = pack_indices(np.array([0, 15]), n)
        set_id, _ = table.add(packed)
        assert np.array_equal(table.row(set_id), packed)
        assert list(table.indices(set_id)) == [0, 15]

    def test_stored_rows_are_copies(self):
        n = 16
        table = BitsetTable(n)
        packed = pack_indices(np.array([3]), n)
        set_id, _ = table.add(packed)
        packed[:] = 0
        assert list(table.indices(set_id)) == [3]


class TestWidth:
    @pytest.mark.parametrize("n,width", [(1, 1), (8, 1), (9, 2), (64, 8), (65, 9)])
    def test_packed_width(self, n, width):
        assert packed_width(n) == width
