"""Bit-identity tests for the materialized-view layer (repro.engine.views).

The contract under test: after ANY committed mutation sequence, a
maintained view's ``refresh()`` returns exactly what a from-scratch
recompute over the mutated matrix would — field-for-field for MDRC
(``indices``, ``cells``, ``max_depth_reached``, ``capped_cells``),
draw-for-draw for K-SETr and MDRRR (same seed ⇒ same stream), and
count-for-count for the sampled rank-regret estimator.  On clean data,
tie-dense duplicates, denormal scales, envelope-escaping inserts,
oversized insert bursts, and deletions that hit the current
representative itself.
"""

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro import mdrc
from repro.core.mdrrr import md_rrr
from repro.engine import (
    KSetView,
    MDRCView,
    MDRRRView,
    RankRegretView,
    ScoreEngine,
)
from repro.evaluation.regret import rank_regret_sampled
from repro.exceptions import ValidationError
from repro.geometry.ksets import sample_ksets
from repro.ranking.sampling import sample_functions
from repro.ranking.topk import top_k


def _assert_mdrc_identical(view, engine):
    """view.refresh() must equal a from-scratch mdrc() on the current matrix."""
    res = view.refresh()
    fresh = mdrc(
        engine.values,
        view.k,
        max_depth=view.max_depth,
        max_cells=view.max_cells,
        choice=view.choice,
        engine=engine,
    )
    assert res.indices == fresh.indices
    assert res.cells == fresh.cells
    assert res.max_depth_reached == fresh.max_depth_reached
    assert res.capped_cells == fresh.capped_cells
    return res


# ----------------------------------------------------------------------
# hypothesis: random mutation sequences against the maintained MDRC view
@st.composite
def view_mutation_case(draw):
    d = draw(st.integers(min_value=2, max_value=3))
    n0 = draw(st.integers(min_value=14, max_value=28))
    # Denormal scale exercises the robust-norm path end to end; the small
    # integer grid forces exact ties and duplicate rows through every
    # screen and merge.
    scale = draw(st.sampled_from([1.0, 1e-300]))
    base = draw(
        st.lists(
            st.lists(st.integers(min_value=0, max_value=4), min_size=d, max_size=d),
            min_size=n0,
            max_size=n0,
        )
    )
    matrix = np.asarray(base, dtype=np.float64) * scale
    k = draw(st.integers(min_value=2, max_value=4))
    policy = draw(st.sampled_from(["first", "best-rank"]))
    ops = []
    n = n0
    for _ in range(draw(st.integers(min_value=1, max_value=3))):
        if n <= k + 5 or draw(st.booleans()):
            m = draw(st.integers(min_value=1, max_value=5))
            rows = draw(
                st.lists(
                    st.lists(
                        st.integers(min_value=0, max_value=4), min_size=d, max_size=d
                    ),
                    min_size=m,
                    max_size=m,
                )
            )
            # ×50 inserts escape the quantized tier's per-attribute
            # envelope, forcing the rescale path under the view.
            ins_scale = draw(st.sampled_from([1.0, 50.0]))
            ops.append(("insert", np.asarray(rows, dtype=np.float64) * scale * ins_scale))
            n += m
        else:
            count = draw(st.integers(min_value=1, max_value=min(4, n - k - 3)))
            idx = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n - 1),
                    min_size=count,
                    max_size=count,
                    unique=True,
                )
            )
            ops.append(("delete", sorted(idx)))
            n -= count
    return matrix, ops, k, policy


@settings(max_examples=30, deadline=None)
@given(case=view_mutation_case())
def test_maintained_mdrc_bit_identical(case):
    matrix, ops, k, policy = case
    with ScoreEngine(matrix) as engine:
        with MDRCView(engine, k, choice=policy) as view:
            _assert_mdrc_identical(view, engine)
            for kind, payload in ops:
                if kind == "insert":
                    engine.insert_rows(payload)
                else:
                    engine.delete_rows(payload)
                _assert_mdrc_identical(view, engine)


# ----------------------------------------------------------------------
# deterministic MDRC edge cases
class TestMDRCViewEdgeCases:
    def test_delete_of_current_representative(self, rng):
        values = rng.random((600, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 6) as view:
            res = view.refresh()
            for rev in range(4):
                doomed = rng.choice(engine.n, size=8, replace=False)
                if rev == 1:
                    reps = np.asarray(sorted(res.indices), dtype=np.int64)
                    doomed = np.unique(np.concatenate([doomed, reps[: len(reps) // 2]]))
                engine.delete_rows(doomed)
                engine.insert_rows(rng.random((8, 3)))
                res = _assert_mdrc_identical(view, engine)
            assert view.stats["maintains"] >= 1

    def test_shallow_depth_cap_fallback_cells(self, rng):
        values = rng.random((500, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 5, max_depth=3) as view:
            assert view.refresh().capped_cells > 0  # fallback path is live
            for _ in range(3):
                engine.delete_rows(rng.choice(engine.n, size=6, replace=False))
                engine.insert_rows(rng.random((6, 3)))
                _assert_mdrc_identical(view, engine)

    def test_tight_cell_budget(self, rng):
        values = rng.random((800, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 8, max_cells=20) as view:
            view.refresh()
            for _ in range(3):
                engine.delete_rows(rng.choice(engine.n, size=10, replace=False))
                engine.insert_rows(rng.random((10, 3)))
                _assert_mdrc_identical(view, engine)

    def test_exact_duplicates_and_tie_rows(self, rng):
        values = rng.random((400, 3))
        values[50] = values[10]
        values[51] = values[10]
        with ScoreEngine(values) as engine, MDRCView(engine, 5) as view:
            view.refresh()
            dup = engine.values[20].copy()
            engine.delete_rows([10])
            engine.insert_rows(np.vstack([dup, dup]))
            _assert_mdrc_identical(view, engine)
            engine.insert_rows(engine.values[0].copy()[None, :])
            _assert_mdrc_identical(view, engine)

    def test_denormal_scale_matrix(self, rng):
        values = rng.random((300, 3)) * 1e-300
        with ScoreEngine(values) as engine, MDRCView(engine, 4) as view:
            view.refresh()
            for _ in range(3):
                engine.delete_rows(rng.choice(engine.n, size=5, replace=False))
                engine.insert_rows(rng.random((5, 3)) * 1e-300)
                _assert_mdrc_identical(view, engine)
            # The engine itself must agree with the scalar contract at
            # this scale (naive squared-norm sums underflow to zero —
            # the robust-norm path keeps ordering and pruning honest).
            weights = sample_functions(3, 6, rng=0)
            orders = engine.topk_orders(weights, 4)
            for i, w in enumerate(weights):
                assert np.array_equal(orders[i], top_k(engine.values, w, 4))

    def test_insert_burst_beyond_candidate_cap(self, rng):
        values = rng.random((500, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 5) as view:
            view.refresh()
            engine.delete_rows(rng.choice(450, size=3, replace=False))
            engine.insert_rows(rng.random((60, 3)))  # > per-corner merge cap
            _assert_mdrc_identical(view, engine)
            engine.insert_rows(rng.random((1, 3)))
            _assert_mdrc_identical(view, engine)

    def test_matrix_shrinks_below_repair_buffer(self, rng):
        values = rng.random((200, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 4) as view:
            view.refresh()
            # Drop below the corner buffer width (k + reserve): the cache
            # must reset and the next refresh recompute, still identical.
            engine.delete_rows(np.arange(185))
            _assert_mdrc_identical(view, engine)
            assert view.stats["computes"] >= 2

    def test_refresh_without_mutation_serves_cached_result(self, rng):
        values = rng.random((300, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 5) as view:
            first = view.refresh()
            assert view.refresh() is first
            assert view.stats["computes"] == 1

    def test_closed_view_rejects_refresh(self, rng):
        engine = ScoreEngine(rng.random((50, 3)))
        view = MDRCView(engine, 3)
        view.close()
        with pytest.raises(ValidationError):
            view.refresh()
        engine.close()


# ----------------------------------------------------------------------
# K-SETr and MDRRR maintained draw state
class TestKSetAndMDRRRViews:
    def test_kset_view_matches_fresh_seeded_run(self, rng):
        values = rng.random((300, 3))
        with ScoreEngine(values) as engine:
            with KSetView(engine, 4, patience=40, rng=7) as view:
                view.refresh()
                for _ in range(3):
                    engine.delete_rows(rng.choice(engine.n, size=5, replace=False))
                    engine.insert_rows(rng.random((5, 3)))
                    res = view.refresh()
                    fresh = sample_ksets(
                        engine.values, 4, patience=40, rng=7, engine=engine
                    )
                    assert res.ksets == fresh.ksets
                    assert res.draws == fresh.draws
                    assert res.exhausted == fresh.exhausted
                assert view.stats["draws_kept"] > 0

    def test_mdrrr_view_matches_fresh_seeded_run(self, rng):
        values = rng.random((250, 3))
        with ScoreEngine(values) as engine:
            with MDRRRView(engine, 4, patience=40, rng=11) as view:
                view.refresh()
                for _ in range(2):
                    engine.delete_rows(rng.choice(engine.n, size=5, replace=False))
                    engine.insert_rows(rng.random((5, 3)))
                    res = view.refresh()
                    fresh = md_rrr(
                        engine.values,
                        4,
                        enumerator="sample",
                        patience=40,
                        rng=11,
                        engine=engine,
                    )
                    assert res.indices == fresh.indices
                    assert res.ksets == fresh.ksets
                    assert res.sample_draws == fresh.sample_draws

    @pytest.mark.parametrize("cls", [KSetView, MDRRRView])
    def test_seeded_views_reject_live_generators(self, rng, cls):
        with ScoreEngine(rng.random((60, 3))) as engine:
            with pytest.raises(ValidationError):
                cls(engine, 3, rng=np.random.default_rng(0))


# ----------------------------------------------------------------------
# maintained rank-regret estimator
class TestRankRegretView:
    def test_patch_counting_matches_fresh_estimate(self, rng):
        values = rng.random((500, 4))
        with ScoreEngine(values) as engine:
            rep = mdrc(values, 8, engine=engine).indices
            with RankRegretView(engine, rep, num_functions=256, rng=3) as view:
                got = view.refresh()
                want = rank_regret_sampled(
                    engine.values, rep, num_functions=256, rng=3, engine=engine
                )
                assert got == want
                for _ in range(3):
                    # Spare the members so the exact ±counting patch path
                    # (not the subset-loss reset) is what's exercised.
                    alive = np.setdiff1d(np.arange(engine.n), view._members)
                    engine.delete_rows(rng.choice(alive, size=10, replace=False))
                    engine.insert_rows(rng.random((10, 4)))
                    got = view.refresh()
                    want = rank_regret_sampled(
                        engine.values,
                        view._members,
                        num_functions=256,
                        rng=3,
                        engine=engine,
                    )
                    assert got == want
                assert view.stats["functions_patched"] > 0

    def test_subset_member_deletion_resets_to_survivors(self, rng):
        values = rng.random((300, 3))
        with ScoreEngine(values) as engine:
            rep = mdrc(values, 6, engine=engine).indices
            with RankRegretView(engine, rep, num_functions=128, rng=5) as view:
                view.refresh()
                engine.delete_rows([rep[0]])
                got = view.refresh()
                assert view.stats["subset_losses"] == 1
                want = rank_regret_sampled(
                    engine.values,
                    view._members,
                    num_functions=128,
                    rng=5,
                    engine=engine,
                )
                assert got == want

    def test_set_subset_follows_upstream_representative(self, rng):
        values = rng.random((400, 3))
        with ScoreEngine(values) as engine, MDRCView(engine, 6) as mview:
            rep = mview.refresh().indices
            with RankRegretView(engine, rep, num_functions=128, rng=9) as view:
                view.refresh()
                for _ in range(3):
                    engine.delete_rows(rng.choice(engine.n, size=8, replace=False))
                    engine.insert_rows(rng.random((8, 3)))
                    rep = _assert_mdrc_identical(mview, engine).indices
                    view.set_subset(rep)
                    got = view.refresh()
                    want = rank_regret_sampled(
                        engine.values, rep, num_functions=128, rng=9, engine=engine
                    )
                    assert got == want

    def test_total_subset_loss_raises(self, rng):
        values = rng.random((100, 3))
        with ScoreEngine(values) as engine:
            with RankRegretView(engine, [2, 5], num_functions=32, rng=1) as view:
                view.refresh()
                engine.delete_rows([2, 5])
                with pytest.raises(ValidationError):
                    view.refresh()

    def test_rejects_live_generator_and_empty_subset(self, rng):
        with ScoreEngine(rng.random((50, 3))) as engine:
            with pytest.raises(ValidationError):
                RankRegretView(engine, [0], num_functions=8, rng=np.random.default_rng(0))
            with pytest.raises(ValidationError):
                RankRegretView(engine, [], num_functions=8, rng=0)
