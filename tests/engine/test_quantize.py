"""Property and unit tests for the quantized screening tier.

The load-bearing property is the exactness contract: with the int8/int16
tier enabled (any level, any adaptive state), ``topk_batch`` and
``rank_of_best_batch`` stay *bit-identical* to the scalar
``top_k``/``rank_of`` path — on clean data, tie-dense data, duplicate
rows, denormal scales, and adversarially near-boundary instances whose
gaps sit inside (or just outside) the quantization envelope.  Alongside:
unit coverage for the level machinery itself — rigorous per-row bounds,
the dynamic-range probe, the adaptive promote policy, degenerate-scale
handling, and pickling.
"""

import pickle

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.engine import Quantizer, ScoreEngine
from repro.engine.quantize import _LEVELS, _PROMOTE_WINDOW
from repro.exceptions import ValidationError
from repro.ranking import sample_functions
from repro.ranking.topk import top_k

QUANT_MODES = ("auto", "int8", "int16")


def _assert_topk_identical(values, weights, k, **engine_kwargs):
    engine = ScoreEngine(values, **engine_kwargs)
    batch = engine.topk_batch(weights, k)
    for i, w in enumerate(weights):
        assert np.array_equal(batch.order[i], top_k(values, w, k)), (
            f"quantized top-k diverged from scalar (function {i}, "
            f"quantize={engine_kwargs.get('quantize')})"
        )
    return engine


def _scalar_rank_of_best(values, w, members):
    """The engine's contract: 1 + rows *strictly* above the best member,
    counted with the exact scalar float64 GEMV kernel."""
    exact = values @ w
    return int((exact > exact[members].max()).sum()) + 1


def _assert_ranks_identical(values, weights, subset, **engine_kwargs):
    engine = ScoreEngine(values, **engine_kwargs)
    # Force the adaptive rank policy to engage the quantized screen so
    # the tier itself — not just the float path — is what gets checked.
    engine._rank_float_columns = 10_000
    engine._rank_float_fallbacks = 10_000
    got = engine.rank_of_best_batch(weights, subset)
    untiered = ScoreEngine(values, quantize=None).rank_of_best_batch(weights, subset)
    assert np.array_equal(got, untiered), "quantized rank diverged from float tiers"
    for j, w in enumerate(weights):
        assert got[j] == _scalar_rank_of_best(values, w, subset)
    return engine


# ----------------------------------------------------------------------
# hypothesis: bit-identity across adversarial data shapes
@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(30, 300),
    d=st.integers(2, 5),
    k=st.integers(1, 20),
    mode=st.sampled_from(QUANT_MODES),
)
@settings(max_examples=40, deadline=None)
def test_topk_bit_identity_random(seed, n, d, k, mode):
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    weights = sample_functions(d, 17, rng)
    _assert_topk_identical(values, weights, min(k, n), quantize=mode)


@given(
    seed=st.integers(0, 2**31 - 1),
    decimals=st.integers(1, 2),
    k=st.integers(1, 12),
    mode=st.sampled_from(QUANT_MODES),
)
@settings(max_examples=30, deadline=None)
def test_topk_bit_identity_on_ties(seed, decimals, k, mode):
    # Rounded values create massive exact score ties; every tie at a
    # decision boundary must resolve by the scalar index tie-break.
    rng = np.random.default_rng(seed)
    values = np.round(rng.random((80, 3)), decimals)
    weights = np.round(sample_functions(3, 12, rng), decimals)
    weights[weights.sum(axis=1) == 0] = 1.0
    _assert_topk_identical(values, weights, k, quantize=mode)


@given(seed=st.integers(0, 2**31 - 1), mode=st.sampled_from(QUANT_MODES))
@settings(max_examples=20, deadline=None)
def test_topk_bit_identity_duplicate_rows(seed, mode):
    # Identical rows: GEMM noise must never reorder them past the index
    # tie-break, and the quantized envelope sees them as exact equals.
    rng = np.random.default_rng(seed)
    base = rng.random((12, 3))
    values = np.repeat(base, 5, axis=0)
    weights = sample_functions(3, 10, rng)
    _assert_topk_identical(values, weights, 7, quantize=mode)


@given(
    seed=st.integers(0, 2**31 - 1),
    scale_exp=st.sampled_from([-320, -308, -200, 200, 300]),
    mode=st.sampled_from(QUANT_MODES),
)
@settings(max_examples=20, deadline=None)
def test_topk_bit_identity_extreme_scales(seed, scale_exp, mode):
    # Denormal-range (1e-320) and huge-range data: the quantizer must
    # either stay rigorous or disable itself — never lose exactness.
    rng = np.random.default_rng(seed)
    values = rng.random((60, 3)) * (10.0**scale_exp)
    weights = sample_functions(3, 8, rng)
    _assert_topk_identical(values, weights, 5, quantize=mode)


@given(
    seed=st.integers(0, 2**31 - 1),
    gap_exp=st.integers(-16, -2),
    mode=st.sampled_from(QUANT_MODES),
)
@settings(max_examples=30, deadline=None)
def test_topk_adversarial_near_boundary(seed, gap_exp, mode):
    # Rows engineered to straddle the k boundary by ~10**gap_exp —
    # spanning gaps far inside the int8 envelope up to clearly outside
    # it — must resolve exactly whichever tier ends up deciding.
    rng = np.random.default_rng(seed)
    n, d, k = 120, 3, 9
    values = rng.random((n, d))
    w = sample_functions(d, 1, rng)[0]
    scores = values @ w
    boundary = np.sort(scores)[-k]
    # Push a handful of extra rows to within ~10**gap_exp of the boundary.
    push = rng.choice(n, size=6, replace=False)
    values[push] *= (boundary + 10.0**gap_exp * rng.standard_normal(6)[:, None]) / np.maximum(
        scores[push][:, None], 1e-9
    )
    weights = np.vstack([w, sample_functions(d, 6, rng)])
    _assert_topk_identical(np.abs(values), weights, k, quantize=mode)


@given(
    seed=st.integers(0, 2**31 - 1),
    n=st.integers(40, 250),
    d=st.integers(2, 4),
    mode=st.sampled_from(QUANT_MODES),
)
@settings(max_examples=30, deadline=None)
def test_rank_bit_identity_random(seed, n, d, mode):
    rng = np.random.default_rng(seed)
    values = rng.random((n, d))
    weights = sample_functions(d, 15, rng)
    subset = sorted({0, int(n // 3), n - 1})
    _assert_ranks_identical(values, weights, subset, quantize=mode)


@given(seed=st.integers(0, 2**31 - 1), mode=st.sampled_from(QUANT_MODES))
@settings(max_examples=20, deadline=None)
def test_rank_bit_identity_ties_and_duplicates(seed, mode):
    rng = np.random.default_rng(seed)
    values = np.repeat(np.round(rng.random((20, 3)), 1), 4, axis=0)
    weights = np.round(sample_functions(3, 10, rng), 1)
    weights[weights.sum(axis=1) == 0] = 1.0
    subset = [0, 40, 79]
    _assert_ranks_identical(values, weights, subset, quantize=mode)


# ----------------------------------------------------------------------
# unit coverage: tier mechanics
class TestQuantizerLevels:
    def test_bounds_are_rigorous(self):
        # |x - a*q| <= a/2 per entry, the invariant every screen rests on.
        rng = np.random.default_rng(0)
        values = rng.random((500, 4)) * [1.0, 10.0, 0.01, 100.0]
        for mode in ("int8", "int16"):
            qz = Quantizer(values, mode)
            state = qz.state
            store = state.store(0, values)
            d = values.shape[1]
            recon = store.Q[:, :d].astype(np.float64) * state.scales
            assert np.all(np.abs(values - recon) <= 0.5 * state.scales + 1e-30)
            assert np.array_equal(
                store.absq.astype(np.float64),
                np.abs(store.Q[:, :d]).sum(axis=1, dtype=np.float64),
            )

    def test_carrier_choice(self):
        values = np.random.default_rng(1).random((50, 4))
        assert Quantizer(values, "int8").state.carrier is np.float32
        assert Quantizer(values, "int16").state.carrier is np.float64

    def test_dynamic_range_probe_collapses_to_int16(self):
        # Rows distinct only below int8 resolution: the probe must see
        # the collapse and start at int16.
        rng = np.random.default_rng(2)
        values = 1.0 + rng.random((200, 3)) * 1e-6
        assert Quantizer(values, "auto").level == "int16"
        assert Quantizer(rng.random((200, 3)), "auto").level == "int8"

    def test_adaptive_upgrade_and_disable(self):
        values = np.random.default_rng(3).random((100, 3))
        qz = Quantizer(values, "auto")
        assert qz.level == "int8"
        qz.observe(_PROMOTE_WINDOW, _PROMOTE_WINDOW)  # everything promoted
        assert qz.level == "int16"
        qz.observe(_PROMOTE_WINDOW, _PROMOTE_WINDOW)
        assert qz.level is None and not qz.active
        # Pinned modes never adapt.
        pinned = Quantizer(values, "int8")
        pinned.observe(_PROMOTE_WINDOW, _PROMOTE_WINDOW)
        assert pinned.level == "int8"

    def test_low_promote_rate_keeps_level(self):
        values = np.random.default_rng(4).random((100, 3))
        qz = Quantizer(values, "auto")
        qz.observe(_PROMOTE_WINDOW, _PROMOTE_WINDOW // 100)
        assert qz.level == "int8"

    def test_degenerate_weights_are_flagged(self):
        values = np.random.default_rng(5).random((50, 3))
        state = Quantizer(values, "int8").state
        W = np.array([[0.2, 0.3, 0.5], [0.0, 0.0, 0.0], [1e-300, 0.0, 0.0]])
        Wq, b, usum, degenerate = state.quantize_weights(W)
        assert not degenerate[0] and degenerate[1] and degenerate[2]
        assert np.all(Wq[:, -1] == 1.0)
        assert np.abs(Wq[0, :-1]).max() <= _LEVELS["int8"]

    def test_nonfinite_and_subnormal_data_disable(self):
        subnormal = np.full((20, 2), 5e-323)
        assert Quantizer(subnormal, "auto").level is None
        # Engine still answers exactly through the float tiers.
        weights = sample_functions(2, 5, 0)
        _assert_topk_identical(subnormal, weights, 3, quantize="auto")

    def test_invalid_mode_rejected(self):
        values = np.ones((3, 2))
        with pytest.raises(ValueError):
            Quantizer(values, "int4")
        with pytest.raises(ValidationError):
            ScoreEngine(values, quantize="int4")

    def test_pickle_roundtrip_keeps_level(self):
        values = np.random.default_rng(6).random((80, 3))
        engine = ScoreEngine(values, quantize="auto")
        engine.topk_batch(sample_functions(3, 8, 6), 5)
        clone = pickle.loads(pickle.dumps(engine))
        assert clone._quantizer.level == engine._quantizer.level
        weights = sample_functions(3, 6, 7)
        assert np.array_equal(
            clone.topk_batch(weights, 5).order, engine.topk_batch(weights, 5).order
        )


class TestTierIntegration:
    def test_quant_tier_resolves_clean_data(self):
        # The hit-rate contract the perf gate reports: on clean data at
        # bench-like shape, the bottom tier decides nearly every column.
        rng = np.random.default_rng(7)
        values = rng.random((2000, 4))
        engine = ScoreEngine(values, float32=True)
        engine.topk_batch(sample_functions(4, 512, 7), 25)
        assert engine.stats["quant_columns"] == 512
        assert engine.stats["quant_resolved"] >= 0.8 * 512

    def test_quantize_none_disables_tier(self):
        values = np.random.default_rng(8).random((500, 3))
        engine = ScoreEngine(values, quantize=None)
        engine.topk_batch(sample_functions(3, 64, 8), 10)
        assert engine.stats["quant_columns"] == 0
        assert engine._quantizer is None

    def test_rank_policy_engages_on_fallback_heavy_data(self):
        # Tie-dense data drives the float path's wholesale fallbacks up;
        # the next call must switch to the quantized screen and agree.
        rng = np.random.default_rng(9)
        values = np.round(rng.random((400, 3)), 1)
        weights = np.round(sample_functions(3, 80, rng), 1)
        weights[weights.sum(axis=1) == 0] = 1.0
        subset = [0, 200, 399]
        engine = ScoreEngine(values)
        first = engine.rank_of_best_batch(weights, subset)
        assert engine._rank_float_fallbacks > 0
        engaged = engine.rank_of_best_batch(weights, subset)
        assert engine.stats["quant_columns"] > 0
        assert np.array_equal(first, engaged)
        for j, w in enumerate(weights):
            assert first[j] == _scalar_rank_of_best(values, w, subset)

    def test_rank_policy_stays_float_on_clean_data(self):
        # A representative-grade subset on clean data produces (almost)
        # no scalar fallbacks, so the float path keeps the job.
        rng = np.random.default_rng(10)
        values = rng.random((800, 3))
        subset = [int(i) for i in np.argsort(-values.sum(axis=1))[:5]]
        engine = ScoreEngine(values)
        for _ in range(3):
            engine.rank_of_best_batch(sample_functions(3, 100, rng), subset)
        assert engine.stats["quant_columns"] == 0
