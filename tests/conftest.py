"""Shared fixtures for the test suite."""

from __future__ import annotations

import numpy as np
import pytest

from repro.datasets import (
    anticorrelated,
    correlated,
    independent,
    paper_example,
    synthetic_bluenile,
    synthetic_dot,
)


@pytest.fixture
def example():
    """The paper's 7-point running example (Figure 1)."""
    return paper_example()


@pytest.fixture
def example_values(example):
    return example.values


@pytest.fixture
def rng():
    return np.random.default_rng(12345)


@pytest.fixture
def small_2d():
    """A 60-point 2-D anticorrelated dataset (hard case, still sweepable)."""
    return anticorrelated(60, 2, seed=7).values


@pytest.fixture
def small_3d():
    """A 50-point 3-D independent dataset (fast for LP-based paths)."""
    return independent(50, 3, seed=11).values


@pytest.fixture
def medium_3d():
    """A 400-point 3-D dataset for algorithm-level tests."""
    return independent(400, 3, seed=3).values


@pytest.fixture
def dot_small():
    return synthetic_dot(n=300, d=3, seed=5)


@pytest.fixture
def bn_small():
    return synthetic_bluenile(n=300, d=3, seed=5)


@pytest.fixture
def correlated_2d():
    return correlated(80, 2, seed=9).values
