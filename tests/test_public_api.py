"""Tests for the top-level package surface."""

import importlib
import inspect

import pytest

import repro


class TestExports:
    def test_all_names_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_version(self):
        assert repro.__version__ == "1.0.0"

    @pytest.mark.parametrize(
        "module",
        [
            "repro.datasets",
            "repro.ranking",
            "repro.geometry",
            "repro.setcover",
            "repro.core",
            "repro.baselines",
            "repro.evaluation",
            "repro.experiments",
            "repro.cli",
        ],
    )
    def test_submodule_all_resolves(self, module):
        mod = importlib.import_module(module)
        for name in mod.__all__:
            assert hasattr(mod, name), f"{module}.{name}"

    def test_every_public_callable_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if callable(obj) and not inspect.isclass(obj):
                if not (obj.__doc__ or "").strip():
                    missing.append(name)
        assert not missing, f"missing docstrings: {missing}"

    def test_every_public_class_has_docstring(self):
        missing = []
        for name in repro.__all__:
            obj = getattr(repro, name)
            if inspect.isclass(obj) and not (obj.__doc__ or "").strip():
                missing.append(name)
        assert not missing

    def test_exceptions_form_hierarchy(self):
        assert issubclass(repro.ValidationError, repro.ReproError)
        assert issubclass(repro.DatasetError, repro.ReproError)
        assert issubclass(repro.GeometryError, repro.ReproError)
        assert issubclass(repro.InfeasibleError, repro.ReproError)
        assert issubclass(repro.ConvergenceError, repro.ReproError)
        assert issubclass(repro.ValidationError, ValueError)
