"""Unit tests for the experiment runner (small instances)."""

import dataclasses

import pytest

from repro.exceptions import ValidationError
from repro.experiments import (
    ExperimentConfig,
    KSetCountConfig,
    make_dataset,
    run_experiment,
    run_kset_count,
)


@pytest.fixture
def tiny_md_config():
    return ExperimentConfig(
        "tiny_md", "dot", ("mdrc", "mdrrr", "hd_rrms"),
        vary="n", values=(100, 200), d=3, k_fraction=0.05,
        eval_functions=500, seed=0,
    )


@pytest.fixture
def tiny_2d_config():
    return ExperimentConfig(
        "tiny_2d", "bn", ("2drrr", "mdrc"),
        vary="k", values=(0.05, 0.1), n=80, d=2,
        eval_functions=500, seed=0,
    )


class TestMakeDataset:
    def test_dot(self):
        ds = make_dataset("dot", 50, 3)
        assert (ds.n, ds.d) == (50, 3)
        assert ds.is_normalized

    def test_bn(self):
        ds = make_dataset("bn", 50, 4)
        assert (ds.n, ds.d) == (50, 4)

    def test_unknown(self):
        with pytest.raises(ValidationError):
            make_dataset("nope", 10, 2)


class TestRunExperiment:
    def test_row_per_algorithm_and_value(self, tiny_md_config):
        rows = run_experiment(tiny_md_config)
        assert len(rows) == 6  # 3 algorithms x 2 sweep values
        assert {r.algorithm for r in rows} == {"mdrc", "mdrrr", "hd_rrms"}
        assert {r.n for r in rows} == {100, 200}

    def test_vary_n_sets_n(self, tiny_md_config):
        rows = run_experiment(tiny_md_config)
        for row in rows:
            assert row.d == 3
            assert row.k == max(1, round(0.05 * row.n))

    def test_vary_k(self, tiny_2d_config):
        rows = run_experiment(tiny_2d_config)
        assert {r.k for r in rows} == {4, 8}

    def test_guarantees_hold_on_tiny_instance(self, tiny_md_config):
        rows = run_experiment(tiny_md_config)
        for row in rows:
            if row.algorithm == "mdrrr":
                assert row.rank_regret <= row.k
            elif row.algorithm == "mdrc":
                assert row.rank_regret <= row.d * row.k

    def test_hd_rrms_budget_follows_mdrc(self, tiny_md_config):
        rows = run_experiment(tiny_md_config)
        by_n = {}
        for row in rows:
            by_n.setdefault(row.n, {})[row.algorithm] = row
        for n, algos in by_n.items():
            assert algos["hd_rrms"].output_size <= max(algos["mdrc"].output_size, 1)

    def test_progress_callback(self, tiny_2d_config):
        messages = []
        run_experiment(tiny_2d_config, progress=messages.append)
        assert len(messages) == 4

    def test_timings_positive(self, tiny_2d_config):
        rows = run_experiment(tiny_2d_config)
        assert all(r.time_sec >= 0 for r in rows)


class TestRunKsetCount:
    def test_2d_exact_path(self):
        config = KSetCountConfig(
            "tiny_ks2", "dot", vary="d", values=(2,), n=60, k_fraction=0.05
        )
        rows = run_kset_count(config)
        assert len(rows) == 1
        assert rows[0].draws == 0
        assert rows[0].num_ksets >= 1

    def test_3d_sampled_path(self):
        config = KSetCountConfig(
            "tiny_ks3", "bn", vary="k", values=(0.05, 0.1), n=60, d=3
        )
        rows = run_kset_count(config)
        assert len(rows) == 2
        assert all(r.draws > 0 for r in rows)
        assert all(r.upper_bound >= 1 for r in rows)

    def test_dataclass_fields(self):
        config = KSetCountConfig(
            "tiny_ks", "dot", vary="d", values=(2,), n=40, k_fraction=0.1
        )
        row = run_kset_count(config)[0]
        names = {f.name for f in dataclasses.fields(row)}
        assert {"num_ksets", "upper_bound", "time_sec"} <= names
