"""Unit tests for report rendering and shape checking."""

from repro.experiments import (
    format_experiment_table,
    format_kset_table,
    summarize_shapes,
)
from repro.experiments.runner import ExperimentRow, KSetCountRow


def make_row(algorithm="mdrc", rank_regret=5, k=10, output_size=8, d=3):
    return ExperimentRow(
        experiment_id="figX",
        dataset="dot",
        algorithm=algorithm,
        n=1000,
        d=d,
        k=k,
        time_sec=0.123,
        output_size=output_size,
        rank_regret=rank_regret,
        meets_k=rank_regret <= k,
    )


class TestTables:
    def test_experiment_table_contains_rows(self):
        table = format_experiment_table([make_row(), make_row("mdrrr")])
        assert "mdrc" in table
        assert "mdrrr" in table
        assert table.count("\n") == 3  # header + separator + 2 rows

    def test_kset_table(self):
        row = KSetCountRow(
            experiment_id="fig13", dataset="dot", n=100, d=3, k=5,
            num_ksets=42, upper_bound=1118.0, draws=500, time_sec=0.5,
        )
        table = format_kset_table([row])
        assert "42" in table
        assert "fig13" in table

    def test_markdown_structure(self):
        table = format_experiment_table([make_row()])
        lines = table.split("\n")
        assert all(line.startswith("|") for line in lines)


class TestSummarizeShapes:
    def test_all_claims_hold(self):
        rows = [
            make_row("mdrc", rank_regret=8, k=10),
            make_row("mdrrr", rank_regret=10, k=10),
            make_row("2drrr", rank_regret=15, k=10, d=2),
            make_row("hd_rrms", rank_regret=900, k=10),
        ]
        shapes = summarize_shapes(rows)
        assert shapes["rrr_meets_k"]
        assert shapes["hd_rrms_violates_k"]
        assert shapes["outputs_small"]

    def test_mdrrr_violation_detected(self):
        rows = [make_row("mdrrr", rank_regret=11, k=10)]
        assert not summarize_shapes(rows)["rrr_meets_k"]

    def test_mdrc_allows_dk(self):
        rows = [make_row("mdrc", rank_regret=25, k=10, d=3)]
        assert summarize_shapes(rows)["rrr_meets_k"]

    def test_large_output_detected(self):
        rows = [make_row("mdrc", output_size=45)]
        assert not summarize_shapes(rows)["outputs_small"]

    def test_no_baseline_rows(self):
        assert summarize_shapes([make_row()])["hd_rrms_violates_k"]
