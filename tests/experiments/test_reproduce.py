"""Unit tests for the one-shot reproduction driver."""

from dataclasses import replace

import pytest

from repro.experiments import PAPER_CLAIMS, reproduce_all
from repro.experiments import config as config_module


@pytest.fixture
def tiny_configs(monkeypatch):
    """Shrink every bench config to near-trivial sizes for a fast test."""
    small = {}
    for key, config in config_module.BENCH_EXPERIMENTS.items():
        if hasattr(config, "algorithms"):
            small[key] = replace(
                config,
                n=60,
                values=(50, 60) if config.vary == "n" else config.values[:1],
                eval_functions=200,
            )
        else:
            small[key] = replace(config, n=50, values=config.values[:1])
    monkeypatch.setattr(config_module, "BENCH_EXPERIMENTS", small)
    monkeypatch.setattr(
        "repro.experiments.reproduce.BENCH_EXPERIMENTS", small
    )
    return small


class TestReproduceAll:
    def test_covers_every_figure(self, tiny_configs):
        report = reproduce_all(scale="bench")
        for figure_id in PAPER_CLAIMS:
            assert f"## {figure_id}" in report
            assert PAPER_CLAIMS[figure_id][:40] in report

    def test_contains_measured_tables_and_checks(self, tiny_configs):
        report = reproduce_all(scale="bench")
        assert "**Measured:**" in report
        assert "Shape" in report
        assert "| experiment" in report or "| algorithm" in report

    def test_progress_called(self, tiny_configs):
        messages = []
        reproduce_all(scale="bench", progress=messages.append)
        assert any("fig09_10" in m for m in messages)

    def test_claims_cover_all_bench_figures(self):
        assert set(PAPER_CLAIMS) == set(config_module.BENCH_EXPERIMENTS)
