"""Unit tests for experiment configurations."""

import pytest

from repro.experiments import (
    BENCH_EXPERIMENTS,
    PAPER_EXPERIMENTS,
    ExperimentConfig,
    KSetCountConfig,
)


class TestConfigs:
    def test_every_paper_figure_has_a_config(self):
        expected = {
            "fig09_10", "fig11_12", "fig13", "fig14", "fig15", "fig16",
            "fig17_18", "fig19_20", "fig21_22", "fig23_24", "fig25_26",
            "fig27_28",
        }
        assert set(PAPER_EXPERIMENTS) == expected
        assert set(BENCH_EXPERIMENTS) == expected

    def test_paper_defaults(self):
        config = PAPER_EXPERIMENTS["fig17_18"]
        assert config.n == 10_000
        assert config.d == 3
        assert config.k_fraction == 0.01
        assert config.eval_functions == 10_000

    def test_bench_scale_is_smaller(self):
        for key, bench in BENCH_EXPERIMENTS.items():
            paper = PAPER_EXPERIMENTS[key]
            assert bench.n <= paper.n

    def test_kset_configs_cover_fig13_to_16(self):
        for key in ("fig13", "fig14", "fig15", "fig16"):
            assert isinstance(PAPER_EXPERIMENTS[key], KSetCountConfig)

    def test_md_experiments_include_hd_rrms(self):
        for key in ("fig17_18", "fig19_20", "fig21_22", "fig23_24",
                    "fig25_26", "fig27_28"):
            assert "hd_rrms" in PAPER_EXPERIMENTS[key].algorithms

    def test_2d_experiments_include_all_proposed(self):
        config = PAPER_EXPERIMENTS["fig09_10"]
        assert set(config.algorithms) == {"2drrr", "mdrrr", "mdrc"}
        assert config.d == 2

    def test_invalid_vary_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig("x", "dot", ("mdrc",), vary="z", values=(1,))

    def test_invalid_dataset_rejected(self):
        with pytest.raises(ValueError):
            ExperimentConfig("x", "nope", ("mdrc",), vary="n", values=(1,))
        with pytest.raises(ValueError):
            KSetCountConfig("x", "dot", vary="n", values=(1,))
