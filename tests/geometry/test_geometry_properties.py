"""Property-based tests (hypothesis) for the geometric substrate."""

import numpy as np
from hypothesis import given, settings
from hypothesis import strategies as st
from hypothesis.extra.numpy import arrays

from repro.geometry import (
    AngularSweep,
    crossing_angle_2d,
    enumerate_ksets_2d,
    skyline_bnl,
    skyline_sfs,
)
from repro.ranking import ranking, sample_functions, top_k_set

# Coordinates on a 1e-3 grid: coarse enough that score arithmetic can
# never tie at the float-ulp level (where scored comparisons and the
# exact sweep legitimately disagree), fine enough to exercise ties and
# collinearity heavily.
_points_2d = arrays(
    np.float64,
    st.tuples(st.integers(3, 25), st.just(2)),
    elements=st.floats(0.0, 1.0, allow_nan=False).map(lambda v: round(v, 3)),
)

_points_md = arrays(
    np.float64,
    st.tuples(st.integers(3, 25), st.integers(2, 4)),
    elements=st.floats(0.0, 1.0, allow_nan=False),
)


@given(_points_2d)
@settings(max_examples=50, deadline=None)
def test_sweep_terminal_order_matches_brute_force(values):
    sweep = AngularSweep(values)
    events = sweep.run()
    # Probe strictly after the last exchange: the maintained order is the
    # ranking for every angle in (last event, π/2).
    last = events[-1].theta if events else 0.0
    probe = (last + np.pi / 2) / 2.0
    w = np.array([np.cos(probe), np.sin(probe)])
    expected = list(ranking(values, w))
    got = list(sweep.order)
    # Ties at the probe angle may order differently; compare scores.
    scores = values @ w
    assert [scores[i] for i in got] == [scores[i] for i in expected]


@given(_points_2d)
@settings(max_examples=50, deadline=None)
def test_sweep_event_count_bounded_by_pairs(values):
    n = values.shape[0]
    events = AngularSweep(values).run()
    assert len(events) <= n * (n - 1) // 2


@given(_points_2d, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_ksets_2d_cover_random_functions(values, k):
    n = values.shape[0]
    k = min(k, n)
    collection = set(enumerate_ksets_2d(values, k))
    for w in sample_functions(2, 25, rng=0):
        assert top_k_set(values, w, k) in collection


@given(_points_2d, st.integers(1, 5))
@settings(max_examples=40, deadline=None)
def test_ksets_2d_chain_structure(values, k):
    """Consecutive k-sets along the sweep differ in exactly one element."""
    n = values.shape[0]
    k = min(k, n)
    ksets = enumerate_ksets_2d(values, k)
    assert all(len(s) == k for s in ksets)
    for a, b in zip(ksets, ksets[1:]):
        assert len(a & b) == k - 1


@given(_points_md)
@settings(max_examples=50, deadline=None)
def test_skyline_algorithms_agree(values):
    assert np.array_equal(skyline_bnl(values), skyline_sfs(values))


@given(_points_md)
@settings(max_examples=50, deadline=None)
def test_skyline_members_are_undominated(values):
    sky = skyline_bnl(values)
    members = set(int(i) for i in sky)
    for i in members:
        for j in range(values.shape[0]):
            if j == i:
                continue
            strictly = np.all(values[j] >= values[i]) and np.any(
                values[j] > values[i]
            )
            assert not strictly


@given(
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 1.0, allow_nan=False),
    ),
    st.tuples(
        st.floats(0.0, 1.0, allow_nan=False),
        st.floats(0.0, 1.0, allow_nan=False),
    ),
)
@settings(max_examples=200, deadline=None)
def test_crossing_angle_ties_scores(a, b):
    theta = crossing_angle_2d(a, b)
    if theta is None:
        return
    w = np.array([np.cos(theta), np.sin(theta)])
    assert abs(float(np.asarray(a) @ w) - float(np.asarray(b) @ w)) < 1e-9
