"""Unit tests for the skyline operators."""

import numpy as np
import pytest

from repro.datasets import anticorrelated, correlated, paper_example
from repro.exceptions import ValidationError
from repro.geometry import (
    dominance_count,
    dominates,
    skyline,
    skyline_bnl,
    skyline_sfs,
)
from repro.ranking import sample_functions, top_k


def brute_force_skyline(values):
    n = values.shape[0]
    result = []
    for i in range(n):
        if not any(
            np.all(values[j] >= values[i]) and np.any(values[j] > values[i])
            for j in range(n)
            if j != i
        ):
            result.append(i)
    # Deduplicate identical points keeping the smallest index, matching the
    # library convention.
    seen = set()
    deduped = []
    for i in result:
        key = values[i].tobytes()
        if key not in seen:
            seen.add(key)
            deduped.append(i)
    return deduped


class TestDominates:
    def test_strict(self):
        assert dominates([1.0, 1.0], [0.5, 0.5])

    def test_weak(self):
        assert dominates([1.0, 0.5], [0.5, 0.5])

    def test_equal_points_do_not_dominate(self):
        assert not dominates([0.5, 0.5], [0.5, 0.5])

    def test_incomparable(self):
        assert not dominates([1.0, 0.0], [0.0, 1.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            dominates([1.0], [1.0, 2.0])


class TestSkylineAlgorithms:
    @pytest.mark.parametrize("algorithm", [skyline_bnl, skyline_sfs])
    def test_matches_brute_force(self, algorithm):
        rng = np.random.default_rng(0)
        for trial in range(5):
            values = rng.random((60, 3))
            assert list(algorithm(values)) == sorted(brute_force_skyline(values))

    def test_bnl_and_sfs_agree(self):
        rng = np.random.default_rng(1)
        for _ in range(10):
            values = rng.random((80, 2))
            assert np.array_equal(skyline_bnl(values), skyline_sfs(values))

    def test_duplicates_keep_first_index(self):
        values = np.array([[0.9, 0.9], [0.9, 0.9], [0.1, 0.1]])
        assert list(skyline_bnl(values)) == [0]
        assert list(skyline_sfs(values)) == [0]

    def test_paper_example_skyline(self):
        # t7 and t3 and t5 are pairwise incomparable and undominated;
        # t1 is dominated by t7 (0.91 > 0.80, 0.43 > 0.28).
        sky = set(int(i) for i in skyline(paper_example().values))
        assert sky == {2, 4, 6}

    def test_single_point(self):
        assert list(skyline(np.array([[0.5, 0.5]]))) == [0]

    def test_contains_top1_of_every_monotone_linear_function(self):
        rng = np.random.default_rng(2)
        values = rng.random((100, 3))
        sky = set(int(i) for i in skyline(values))
        for w in sample_functions(3, 100, rng=3):
            assert int(top_k(values, w, 1)[0]) in sky

    def test_anticorrelated_skyline_bigger_than_correlated(self):
        anti = anticorrelated(400, 3, seed=0).values
        corr = correlated(400, 3, seed=0).values
        assert len(skyline(anti)) > 3 * len(skyline(corr))


class TestDominanceCount:
    def test_zero_for_skyline_points(self):
        rng = np.random.default_rng(3)
        values = rng.random((50, 2))
        counts = dominance_count(values)
        sky = set(int(i) for i in skyline(values))
        for i in range(50):
            if counts[i] == 0:
                # Either on the skyline or a duplicate of a skyline point.
                assert i in sky or any(
                    np.array_equal(values[i], values[j]) for j in sky
                )
            else:
                assert i not in sky

    def test_chain(self):
        values = np.array([[0.1, 0.1], [0.2, 0.2], [0.3, 0.3]])
        assert list(dominance_count(values)) == [2, 1, 0]
