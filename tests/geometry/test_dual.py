"""Unit tests for the dual transformation."""

import numpy as np
import pytest

from repro.exceptions import GeometryError, ValidationError
from repro.geometry import (
    crossing_angle_2d,
    dual_hyperplane,
    order_along_ray,
    ray_intersection_distance,
)
from repro.ranking import ranking


class TestDualHyperplane:
    def test_coefficients_are_the_point(self):
        assert np.array_equal(dual_hyperplane([0.5, 0.2]), [0.5, 0.2])

    def test_rejects_empty_and_nan(self):
        with pytest.raises(ValidationError):
            dual_hyperplane([])
        with pytest.raises(ValidationError):
            dual_hyperplane([np.nan])


class TestRayIntersection:
    def test_distance_formula(self):
        # Point (1, 1), ray (1, 0): line x = 1 meets the ray at distance 1.
        assert ray_intersection_distance([1.0, 1.0], [1.0, 0.0]) == pytest.approx(1.0)

    def test_higher_score_is_closer(self):
        w = [0.6, 0.8]
        near = ray_intersection_distance([0.9, 0.9], w)
        far = ray_intersection_distance([0.1, 0.1], w)
        assert near < far

    def test_non_positive_score_raises(self):
        with pytest.raises(GeometryError):
            ray_intersection_distance([0.0, 0.0], [1.0, 0.0])

    def test_dimension_mismatch(self):
        with pytest.raises(ValidationError):
            ray_intersection_distance([1.0, 2.0], [1.0])


class TestOrderAlongRay:
    def test_matches_score_ranking(self):
        rng = np.random.default_rng(5)
        values = rng.random((50, 3)) + 0.01
        w = rng.random(3) + 0.1
        assert np.array_equal(order_along_ray(values, w), ranking(values, w))

    def test_paper_figure3_x_axis_order(self):
        from repro.datasets import paper_example

        order = order_along_ray(paper_example().values, [1.0, 0.01])
        # §3: intersections with the x1 axis order t7, t1, t3, t2, t5, t4, t6.
        assert list(order)[:3] == [6, 0, 2]

    def test_zero_score_raises(self):
        with pytest.raises(GeometryError):
            order_along_ray(np.array([[0.0, 0.0]]), [1.0, 1.0])


class TestCrossingAngle:
    def test_symmetric(self):
        a, b = [0.8, 0.2], [0.2, 0.8]
        assert crossing_angle_2d(a, b) == pytest.approx(crossing_angle_2d(b, a))

    def test_symmetric_tradeoff_crosses_at_diagonal(self):
        theta = crossing_angle_2d([0.8, 0.2], [0.2, 0.8])
        assert theta == pytest.approx(np.pi / 4)

    def test_crossing_angle_equalizes_scores(self):
        rng = np.random.default_rng(6)
        for _ in range(100):
            a, b = rng.random(2), rng.random(2)
            theta = crossing_angle_2d(a, b)
            if theta is None:
                continue
            w = np.array([np.cos(theta), np.sin(theta)])
            assert float(a @ w) == pytest.approx(float(b @ w), abs=1e-12)

    def test_dominance_never_crosses(self):
        assert crossing_angle_2d([0.9, 0.9], [0.1, 0.1]) is None
        assert crossing_angle_2d([0.1, 0.1], [0.9, 0.9]) is None

    def test_weak_dominance_never_crosses(self):
        assert crossing_angle_2d([0.5, 0.9], [0.5, 0.1]) is None
        assert crossing_angle_2d([0.9, 0.5], [0.1, 0.5]) is None

    def test_identical_points_never_cross(self):
        assert crossing_angle_2d([0.5, 0.5], [0.5, 0.5]) is None

    def test_requires_2d(self):
        with pytest.raises(ValidationError):
            crossing_angle_2d([1.0, 2.0, 3.0], [1.0, 2.0, 3.0])

    def test_matches_paper_formula(self):
        # θ = arctan((b_x − a_x)/(a_y − b_y)) for adjacent items a before b
        # in x-descending order (Algorithm 1, line 5).
        a, b = np.array([0.7, 0.3]), np.array([0.4, 0.9])
        expected = np.arctan((a[0] - b[0]) / (b[1] - a[1]))
        assert crossing_angle_2d(a, b) == pytest.approx(expected)
