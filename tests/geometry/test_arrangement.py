"""Unit tests for the top-k border and exact top-k regions."""

import numpy as np
import pytest

from repro.core import find_ranges
from repro.datasets import independent, paper_example
from repro.exceptions import ValidationError
from repro.geometry import (
    exact_topk_intervals,
    k_border_segments,
    rank_at_angle_profile,
    topk_region_measure,
)
from repro.ranking import ranks, weights_from_angles

HALF_PI = float(np.pi / 2)


class TestKBorderSegments:
    def test_paper_figure3_t3_owns_two_segments(self):
        """§3 / Figure 3: d(t3) contains more than one facet of the top-2
        border."""
        segments = k_border_segments(paper_example().values, 2)
        owners = [s.item for s in segments]
        assert owners.count(2) >= 2  # t3 appears at least twice

    def test_segments_partition_the_sweep(self):
        values = independent(40, 2, seed=0).values
        segments = k_border_segments(values, 5)
        assert segments[0].start == 0.0
        assert segments[-1].end == pytest.approx(HALF_PI)
        for a, b in zip(segments, segments[1:]):
            assert a.end == pytest.approx(b.start)
            assert a.item != b.item

    def test_owner_has_rank_k_inside_segment(self):
        values = independent(30, 2, seed=1).values
        k = 4
        for segment in k_border_segments(values, k):
            mid = (segment.start + segment.end) / 2.0
            w = weights_from_angles([mid])
            assert ranks(values, w)[segment.item] == k

    def test_k1_border_owners_are_maxima(self):
        from repro.geometry import maxima_representation

        values = independent(25, 2, seed=2).values
        owners = {s.item for s in k_border_segments(values, 1)}
        assert owners <= set(int(i) for i in maxima_representation(values))

    def test_width_property(self):
        segments = k_border_segments(paper_example().values, 2)
        assert all(s.width > 0 for s in segments)
        assert sum(s.width for s in segments) == pytest.approx(HALF_PI)

    def test_validation(self):
        with pytest.raises(ValidationError):
            k_border_segments(np.ones((4, 3)), 2)
        with pytest.raises(ValidationError):
            k_border_segments(np.ones((4, 2)), 0)


class TestExactTopkIntervals:
    def test_subset_of_find_ranges_closure(self):
        """Theorem 3's distinction: the exact region is a subset of the
        convex closure Algorithm 1 produces."""
        values = independent(35, 2, seed=3).values
        k = 4
        exact = exact_topk_intervals(values, k)
        closure = find_ranges(values, k)
        for item, spans in exact.items():
            assert closure.begin[item] == pytest.approx(spans[0][0])
            assert closure.end[item] == pytest.approx(spans[-1][1])
            for start, end in spans:
                assert start >= closure.begin[item] - 1e-12
                assert end <= closure.end[item] + 1e-12

    def test_intervals_disjoint_and_ordered(self):
        values = independent(40, 2, seed=4).values
        for spans in exact_topk_intervals(values, 5).values():
            for (s1, e1), (s2, e2) in zip(spans, spans[1:]):
                assert e1 < s2
            assert all(s <= e for s, e in spans)

    def test_rank_at_most_k_inside_intervals(self):
        values = independent(25, 2, seed=5).values
        k = 3
        for item, spans in exact_topk_intervals(values, k).items():
            for start, end in spans:
                for theta in np.linspace(start + 1e-9, end - 1e-9, 5):
                    w = weights_from_angles([theta])
                    assert ranks(values, w)[item] <= k

    def test_rank_above_k_outside_intervals(self):
        values = independent(25, 2, seed=6).values
        k = 3
        regions = exact_topk_intervals(values, k)
        rng = np.random.default_rng(0)
        for item, spans in regions.items():
            for theta in rng.uniform(0, HALF_PI, 30):
                inside = any(s - 1e-9 <= theta <= e + 1e-9 for s, e in spans)
                w = weights_from_angles([theta])
                r = int(ranks(values, w)[item])
                if not inside:
                    assert r > k

    def test_at_every_angle_exactly_k_items_active(self):
        values = independent(30, 2, seed=7).values
        k = 4
        regions = exact_topk_intervals(values, k)
        for theta in np.linspace(1e-6, HALF_PI - 1e-6, 60):
            active = sum(
                1
                for spans in regions.values()
                if any(s - 1e-12 <= theta <= e + 1e-12 for s, e in spans)
            )
            assert active >= k  # boundary angles can over-count ties

    def test_paper_example(self):
        regions = exact_topk_intervals(paper_example().values, 2)
        assert set(int(i) for i in regions) == {0, 2, 4, 6}
        # t7 (index 6) is top-2 from theta=0 in a single interval.
        assert len(regions[6]) == 1
        assert regions[6][0][0] == 0.0


class TestRegionMeasure:
    def test_measures_sum_to_k_times_halfpi(self):
        """Integrating |top-k(θ)| over θ gives k·(π/2)."""
        values = independent(30, 2, seed=8).values
        k = 4
        total = sum(topk_region_measure(values, k).values())
        assert total == pytest.approx(k * HALF_PI, rel=1e-9)

    def test_larger_measure_items_sampled_more(self):
        """The coupon-collector connection (§5.2.1): items with bigger
        angular measure appear in more sampled top-k sets."""
        from repro.ranking import sample_functions, top_k_set

        values = independent(40, 2, seed=9).values
        k = 5
        measure = topk_region_measure(values, k)
        counts = dict.fromkeys(measure, 0)
        for w in sample_functions(2, 2000, rng=1):
            for item in top_k_set(values, w, k):
                if item in counts:
                    counts[item] += 1
        big = max(measure, key=measure.get)
        small = min(measure, key=measure.get)
        assert counts[big] > counts[small]


class TestRankProfile:
    def test_profile_shape_and_bounds(self):
        values = independent(20, 2, seed=10).values
        profile = rank_at_angle_profile(values, 0, resolution=64)
        assert profile.shape == (64,)
        assert profile.min() >= 1
        assert profile.max() <= 20

    def test_theorem1_on_profile(self):
        """Between any two grid angles where the rank is <= k, the rank in
        between never exceeds 2k (Theorem 1 with k1 = k2 = k)."""
        values = independent(25, 2, seed=11).values
        k = 4
        for item in range(25):
            profile = rank_at_angle_profile(values, item, resolution=128)
            in_topk = np.flatnonzero(profile <= k)
            if in_topk.size < 2:
                continue
            first, last = in_topk[0], in_topk[-1]
            assert profile[first:last + 1].max() <= 2 * k

    def test_validation(self):
        values = independent(10, 2, seed=12).values
        with pytest.raises(ValidationError):
            rank_at_angle_profile(values, 99)
        with pytest.raises(ValidationError):
            rank_at_angle_profile(values, 0, resolution=1)
