"""Unit tests for convex hulls and the maxima representation."""

import numpy as np
import pytest

from repro.datasets import on_sphere, paper_example
from repro.exceptions import ValidationError
from repro.geometry import convex_hull, convex_hull_2d, maxima_representation
from repro.ranking import sample_functions, top_k


class TestConvexHull2D:
    def test_square(self):
        values = np.array(
            [[0.0, 0.0], [1.0, 0.0], [1.0, 1.0], [0.0, 1.0], [0.5, 0.5]]
        )
        hull = set(convex_hull_2d(values))
        assert hull == {0, 1, 2, 3}

    def test_interior_points_excluded(self):
        rng = np.random.default_rng(0)
        inner = rng.random((50, 2)) * 0.2 + 0.4
        corners = np.array([[0, 0], [1, 0], [1, 1], [0, 1]], dtype=float)
        values = np.vstack([inner, corners])
        hull = set(convex_hull_2d(values))
        assert hull == {50, 51, 52, 53}

    def test_collinear_points(self):
        values = np.array([[0.0, 0.0], [0.5, 0.5], [1.0, 1.0]])
        hull = set(convex_hull_2d(values))
        assert hull == {0, 2}

    def test_duplicates_keep_smallest_index(self):
        values = np.array([[0.0, 0.0], [1.0, 0.0], [1.0, 0.0], [0.5, 1.0]])
        hull = set(convex_hull_2d(values))
        assert 1 in hull and 2 not in hull

    def test_single_point(self):
        assert list(convex_hull_2d(np.array([[0.3, 0.3]]))) == [0]

    def test_two_points(self):
        assert set(convex_hull_2d(np.array([[0.0, 0.0], [1.0, 1.0]]))) == {0, 1}

    def test_matches_scipy_on_random_data(self):
        from scipy.spatial import ConvexHull

        rng = np.random.default_rng(1)
        values = rng.random((200, 2))
        ours = set(int(i) for i in convex_hull_2d(values))
        scipys = set(int(i) for i in ConvexHull(values).vertices)
        assert ours == scipys


class TestConvexHullMD:
    def test_3d_cube_corners(self):
        corners = np.array(
            [[x, y, z] for x in (0.0, 1.0) for y in (0.0, 1.0) for z in (0.0, 1.0)]
        )
        center = np.array([[0.5, 0.5, 0.5]])
        values = np.vstack([corners, center])
        hull = set(convex_hull(values))
        assert hull == set(range(8))

    def test_1d(self):
        values = np.array([[3.0], [1.0], [2.0]])
        assert set(convex_hull(values)) == {0, 1}

    def test_tiny_input_returns_everything(self):
        values = np.array([[0.0, 0.0, 0.0], [1.0, 1.0, 1.0]])
        assert set(convex_hull(values)) == {0, 1}

    def test_rejects_bad_shape(self):
        with pytest.raises(ValidationError):
            convex_hull(np.ones(5))


class TestMaximaRepresentation:
    def test_contains_every_sampled_top1(self):
        rng = np.random.default_rng(2)
        values = rng.random((60, 3))
        maxima = set(int(i) for i in maxima_representation(values))
        for w in sample_functions(3, 200, rng=3):
            winner = int(top_k(values, w, 1)[0])
            assert winner in maxima

    def test_paper_example(self):
        # The 1-sets of the running example are {t7}, {t3}, {t5}: t1 is
        # dominated by t7 (0.91 > 0.80, 0.43 > 0.28) so it is never top-1.
        maxima = set(int(i) for i in maxima_representation(paper_example().values))
        assert maxima == {2, 4, 6}

    def test_dominated_point_excluded(self):
        values = np.array([[1.0, 1.0], [0.5, 0.5], [0.0, 1.0], [1.0, 0.0]])
        maxima = set(int(i) for i in maxima_representation(values))
        assert 1 not in maxima
        assert 0 in maxima

    def test_sphere_data_is_all_maxima(self):
        values = on_sphere(25, 2, seed=4).values
        maxima = maxima_representation(values)
        assert len(maxima) == 25
