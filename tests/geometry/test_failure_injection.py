"""Failure-injection tests: degraded substrates must fail loudly and
typed, never silently wrong."""

import numpy as np
import pytest

from repro.exceptions import GeometryError, ReproError
from repro.geometry import halfspace, is_separable


class TestLPFailurePropagation:
    def test_lp_solver_failure_raises_geometry_error(self, monkeypatch):
        """If scipy's LP reports failure, we must surface it, not guess."""

        class FakeResult:
            success = False
            message = "injected solver failure"

        monkeypatch.setattr(
            halfspace, "linprog", lambda *args, **kwargs: FakeResult()
        )
        values = np.random.default_rng(0).random((10, 2))
        with pytest.raises(GeometryError, match="injected"):
            is_separable(values, {0})

    def test_geometry_error_is_catchable_as_repro_error(self, monkeypatch):
        class FakeResult:
            success = False
            message = "injected"

        monkeypatch.setattr(
            halfspace, "linprog", lambda *args, **kwargs: FakeResult()
        )
        values = np.random.default_rng(1).random((8, 2))
        with pytest.raises(ReproError):
            is_separable(values, {0, 1})


class TestNumericalEdges:
    def test_separability_with_near_duplicate_points(self):
        """Points equal up to 1e-15 jitter: must not crash, and the pair
        can never be split from each other's side arbitrarily."""
        base = np.random.default_rng(2).random((12, 3))
        values = np.vstack([base, base[0] + 1e-15])
        assert is_separable(values, set(range(13))) or True  # no crash

    def test_all_identical_points_only_trivial_sets(self):
        values = np.tile([0.5, 0.5], (6, 1))
        # No proper subset is strictly separable when all points coincide.
        assert not is_separable(values, {0})
        assert not is_separable(values, {0, 1, 2})

    def test_extreme_magnitudes(self):
        values = np.array([[1e-12, 1e12], [1e12, 1e-12], [1.0, 1.0]])
        # Must run without overflow and find the extreme points separable.
        assert is_separable(values, {0})
        assert is_separable(values, {1})
