"""Unit tests for LP-based halfspace separability (Eq. 4)."""

import numpy as np
import pytest

from repro.datasets import paper_example
from repro.exceptions import ValidationError
from repro.geometry import (
    best_for_some_function,
    is_k_set,
    is_separable,
    separating_function,
)
from repro.ranking import top_k_set


class TestSeparatingFunction:
    def test_witness_actually_separates(self):
        rng = np.random.default_rng(0)
        values = rng.random((30, 3))
        # The top-3 of a random positive function is separable by definition.
        w = np.array([0.5, 0.3, 0.2])
        subset = top_k_set(values, w, 3)
        witness = separating_function(values, subset)
        assert witness is not None
        scores = values @ witness
        inside = [scores[i] for i in subset]
        outside = [scores[i] for i in range(30) if i not in subset]
        assert min(inside) > max(outside)

    def test_witness_is_normalized_nonnegative(self):
        values = paper_example().values
        witness = separating_function(values, {6})  # t7 is a 1-set
        assert witness is not None
        assert np.all(witness >= -1e-12)
        assert np.isclose(witness.sum(), 1.0)

    def test_non_separable_subset(self):
        # {t4} (dominated by many) can never be the unique top-1.
        values = paper_example().values
        assert separating_function(values, {3}) is None

    def test_empty_and_full_are_trivially_separable(self):
        values = paper_example().values
        assert separating_function(values, set()) is not None
        assert separating_function(values, set(range(7))) is not None

    def test_out_of_range_index(self):
        with pytest.raises(ValidationError):
            separating_function(paper_example().values, {99})


class TestIsSeparable:
    def test_paper_2sets_are_separable(self):
        # Figure 6: {t1,t7}, {t7,t3}, {t3,t5} are the 2-sets.
        values = paper_example().values
        assert is_separable(values, {0, 6})
        assert is_separable(values, {6, 2})
        assert is_separable(values, {2, 4})

    def test_paper_non_2sets_are_not(self):
        values = paper_example().values
        assert not is_separable(values, {0, 2})  # skips t7 between them
        assert not is_separable(values, {3, 5})  # dominated pair

    def test_every_sampled_topk_is_separable(self):
        rng = np.random.default_rng(1)
        values = rng.random((25, 3))
        from repro.ranking import sample_functions

        for w in sample_functions(3, 10, rng=2):
            assert is_separable(values, top_k_set(values, w, 4))


class TestIsKSet:
    def test_wrong_cardinality(self):
        values = paper_example().values
        assert not is_k_set(values, {0, 6}, 3)

    def test_valid_2set(self):
        assert is_k_set(paper_example().values, {0, 6}, 2)


class TestBestForSomeFunction:
    def test_maxima_of_paper_example(self):
        values = paper_example().values
        # t3, t5, t7 can each be the top-1 (the 1-sets of Figure 6's sweep).
        for index in (2, 4, 6):
            assert best_for_some_function(values, index)
        # t1 is dominated by t7; t2, t4, t6 are strictly inside: never top-1.
        for index in (0, 1, 3, 5):
            assert not best_for_some_function(values, index)
