"""Unit tests for the three k-set enumerators and the k-set graph."""

import numpy as np
import pytest

from repro.datasets import independent, paper_example
from repro.exceptions import ValidationError
from repro.geometry import (
    enumerate_ksets_2d,
    enumerate_ksets_bfs,
    is_separable,
    kset_graph_edges,
    sample_ksets,
)
from repro.ranking import sample_functions, top_k_set


class TestEnumerate2D:
    def test_paper_figure6(self):
        """Figure 6: the 2-sets are {t1,t7}, {t7,t3}, {t3,t5}."""
        ksets = enumerate_ksets_2d(paper_example().values, 2)
        assert [set(s) for s in ksets] == [{0, 6}, {6, 2}, {2, 4}]

    def test_k1_gives_maxima_chain(self):
        ksets = enumerate_ksets_2d(paper_example().values, 1)
        assert [set(s) for s in ksets] == [{6}, {2}, {4}]

    def test_all_members_have_size_k(self, small_2d):
        for kset in enumerate_ksets_2d(small_2d, 5):
            assert len(kset) == 5

    def test_every_enumerated_set_is_separable(self):
        values = independent(20, 2, seed=0).values
        for kset in enumerate_ksets_2d(values, 3):
            assert is_separable(values, kset)

    def test_covers_every_sampled_topk(self, small_2d):
        collection = set(enumerate_ksets_2d(small_2d, 4))
        for w in sample_functions(2, 300, rng=0):
            assert top_k_set(small_2d, w, 4) in collection

    def test_consecutive_ksets_differ_by_one(self, small_2d):
        ksets = enumerate_ksets_2d(small_2d, 5)
        for a, b in zip(ksets, ksets[1:]):
            assert len(a & b) == 4

    def test_k_equals_n(self):
        values = independent(6, 2, seed=1).values
        ksets = enumerate_ksets_2d(values, 6)
        assert ksets == [frozenset(range(6))]

    def test_validation(self):
        with pytest.raises(ValidationError):
            enumerate_ksets_2d(np.ones((5, 3)), 2)
        with pytest.raises(ValidationError):
            enumerate_ksets_2d(np.ones((5, 2)), 0)


class TestSampleKsets:
    def test_finds_all_2d_ksets_of_small_instance(self):
        values = independent(25, 2, seed=2).values
        exact = set(enumerate_ksets_2d(values, 3))
        sampled = set(sample_ksets(values, 3, patience=300, rng=0).ksets)
        assert sampled == exact

    def test_subset_of_exact_in_2d(self, small_2d):
        exact = set(enumerate_ksets_2d(small_2d, 5))
        outcome = sample_ksets(small_2d, 5, patience=50, rng=1)
        assert set(outcome.ksets) <= exact

    def test_every_sample_is_separable_3d(self):
        values = independent(20, 3, seed=3).values
        outcome = sample_ksets(values, 3, patience=60, rng=2)
        for kset in outcome.ksets:
            assert is_separable(values, kset)

    def test_deterministic_given_seed(self):
        values = independent(30, 3, seed=4).values
        a = sample_ksets(values, 3, patience=50, rng=9)
        b = sample_ksets(values, 3, patience=50, rng=9)
        assert a.ksets == b.ksets
        assert a.draws == b.draws

    def test_witness_functions_reproduce_ksets(self):
        values = independent(30, 3, seed=5).values
        outcome = sample_ksets(values, 4, patience=50, rng=3)
        for kset, w in zip(outcome.ksets, outcome.functions):
            assert top_k_set(values, w, 4) == kset

    def test_max_draws_termination(self):
        values = independent(200, 4, seed=6).values
        outcome = sample_ksets(values, 20, patience=10_000, rng=4, max_draws=50)
        assert outcome.exhausted
        assert outcome.draws == 50

    def test_validation(self):
        values = independent(10, 2, seed=0).values
        with pytest.raises(ValidationError):
            sample_ksets(values, 2, patience=0)
        with pytest.raises(ValidationError):
            sample_ksets(values, 2, max_draws=0)


class TestEnumerateBFS:
    def test_matches_2d_sweep(self):
        values = independent(15, 2, seed=7).values
        sweep = set(enumerate_ksets_2d(values, 3))
        bfs = set(enumerate_ksets_bfs(values, 3))
        assert bfs == sweep

    def test_3d_covers_sampled(self):
        values = independent(12, 3, seed=8).values
        bfs = set(enumerate_ksets_bfs(values, 2))
        sampled = set(sample_ksets(values, 2, patience=200, rng=5).ksets)
        assert sampled <= bfs

    def test_all_valid_k_sets(self):
        values = independent(10, 3, seed=9).values
        for kset in enumerate_ksets_bfs(values, 2):
            assert len(kset) == 2
            assert is_separable(values, kset)


class TestKsetGraph:
    def test_edges_definition(self):
        ksets = [frozenset({0, 1}), frozenset({1, 2}), frozenset({3, 4})]
        assert kset_graph_edges(ksets) == [(0, 1)]

    def test_complete_collection_is_connected(self):
        """Theorem 7: the k-set graph over the full collection is connected."""
        import networkx as nx

        values = independent(18, 2, seed=10).values
        ksets = enumerate_ksets_2d(values, 4)
        graph = nx.Graph()
        graph.add_nodes_from(range(len(ksets)))
        graph.add_edges_from(kset_graph_edges(ksets))
        assert nx.is_connected(graph)

    def test_connected_in_3d_bfs(self):
        import networkx as nx

        values = independent(12, 3, seed=11).values
        ksets = enumerate_ksets_bfs(values, 3)
        graph = nx.Graph()
        graph.add_nodes_from(range(len(ksets)))
        graph.add_edges_from(kset_graph_edges(ksets))
        assert nx.is_connected(graph)
