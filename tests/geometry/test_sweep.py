"""Unit tests for the angular sweep (kinetic sorted list)."""

import numpy as np
import pytest

from repro.exceptions import ValidationError
from repro.geometry import AngularSweep, initial_order_2d
from repro.ranking import ranking


def brute_force_order(values, theta):
    """Reference ranking at angle theta via direct scoring."""
    w = np.array([np.cos(theta), np.sin(theta)])
    return ranking(values, w)


class TestInitialOrder:
    def test_sorted_by_x_descending(self):
        values = np.array([[0.1, 0.0], [0.9, 0.0], [0.5, 0.0]])
        assert list(initial_order_2d(values)) == [1, 2, 0]

    def test_ties_broken_by_y_then_index(self):
        values = np.array([[0.5, 0.1], [0.5, 0.9], [0.5, 0.9]])
        assert list(initial_order_2d(values)) == [1, 2, 0]

    def test_rejects_non_2d(self):
        with pytest.raises(ValidationError):
            initial_order_2d(np.ones((3, 3)))


class TestSweepCorrectness:
    def test_order_matches_brute_force_between_events(self):
        rng = np.random.default_rng(0)
        values = rng.random((40, 2))
        sweep = AngularSweep(values)
        sweep.run()
        # Re-run, checking the maintained order against brute force at the
        # midpoint of every inter-event gap.
        sweep = AngularSweep(values)
        prev = 0.0
        iterator = sweep.events()
        checkpoints = []
        for event in iterator:
            mid = (prev + event.theta) / 2.0
            checkpoints.append(mid)
            prev = event.theta
        checkpoints.append((prev + np.pi / 2) / 2.0)
        # Maintained final order equals brute force near π/2.
        assert np.array_equal(sweep.order, brute_force_order(values, checkpoints[-1]))

    def test_order_correct_at_every_gap(self):
        rng = np.random.default_rng(1)
        values = rng.random((25, 2))
        sweep = AngularSweep(values)
        # Drain the sweep; the maintained order is validated terminally
        # (the pre-event states are no longer observable mid-iteration).
        for _event in sweep.events():
            pass
        # At least validate terminal state.
        final = brute_force_order(values, np.pi / 2 - 1e-9)
        assert np.array_equal(sweep.order, final)

    def test_every_event_is_adjacent_transposition(self):
        rng = np.random.default_rng(2)
        values = rng.random((30, 2))
        sweep = AngularSweep(values)
        order = list(initial_order_2d(values))
        for event in sweep.events():
            assert order[event.position] == event.upper
            assert order[event.position + 1] == event.lower
            order[event.position], order[event.position + 1] = (
                order[event.position + 1],
                order[event.position],
            )
        assert order == list(sweep.order)

    def test_event_angles_non_decreasing(self):
        rng = np.random.default_rng(3)
        values = rng.random((35, 2))
        events = AngularSweep(values).run()
        angles = [e.theta for e in events]
        assert angles == sorted(angles)
        assert all(0.0 < a < np.pi / 2 for a in angles)

    def test_paper_example_event_count(self):
        from repro.datasets import paper_example

        # Each pair of items crosses at most once; with 7 items at most 21
        # crossings, and dominated pairs never cross.
        events = AngularSweep(paper_example().values).run()
        assert 0 < len(events) <= 21

    def test_position_array_stays_inverse_of_order(self):
        rng = np.random.default_rng(4)
        values = rng.random((20, 2))
        sweep = AngularSweep(values)
        for _ in sweep.events():
            assert np.array_equal(sweep.order[sweep.position], np.arange(20))


class TestSweepDegeneracies:
    def test_duplicate_points_never_swap(self):
        values = np.array([[0.5, 0.5], [0.5, 0.5], [0.9, 0.1]])
        events = AngularSweep(values).run()
        for event in events:
            pair = {event.upper, event.lower}
            assert pair != {0, 1}

    def test_all_identical_points_no_events(self):
        values = np.tile([0.3, 0.7], (5, 1))
        assert AngularSweep(values).run() == []

    def test_concurrent_crossings_resolve_to_reversal(self):
        # Three points on a line through (0.5, 0.5) with slope -1 all tie at
        # θ = π/4; after it the order must fully reverse.
        values = np.array([[0.8, 0.2], [0.5, 0.5], [0.2, 0.8]])
        sweep = AngularSweep(values)
        events = sweep.run()
        assert len(events) == 3
        assert all(e.theta == pytest.approx(np.pi / 4) for e in events)
        assert list(sweep.order) == [2, 1, 0]

    def test_single_point(self):
        values = np.array([[0.4, 0.6]])
        assert AngularSweep(values).run() == []

    def test_collinear_vertical_points(self):
        values = np.array([[0.5, 0.1], [0.5, 0.5], [0.5, 0.9]])
        # Same x: order is y-descending from the start; no crossings ever.
        sweep = AngularSweep(values)
        assert sweep.run() == []
        assert list(sweep.order) == [2, 1, 0]

    def test_rejects_nan(self):
        with pytest.raises(ValidationError):
            AngularSweep(np.array([[np.nan, 0.0]]))


class TestDegenerateSimultaneousCrossings:
    def test_backwards_events_cannot_corrupt_the_order(self):
        # Hypothesis-found instance: rows 0, 3 and 13 cross pairwise at
        # nearly one angle while duplicate rows pile ties underneath.
        # The candidate predicate used to also queue the both-negative
        # (already-crossed) orientation of a pair, whose angle equals the
        # current sweep angle in this degenerate cluster; executing it
        # re-inverted a just-swapped pair and the dedup set then starved
        # the sweep of every later exchange — enumerate_ksets_2d missed
        # the k-set of every function past the cluster.
        import numpy as np

        from repro.geometry.ksets import enumerate_ksets_2d
        from repro.ranking import sample_functions, top_k_set

        values = np.zeros((14, 2))
        values[0] = [0.0, 0.945]
        values[1] = [1.0, 0.5]
        values[3] = [1.0, 0.4]
        values[13] = [0.4, 0.727]
        collection = set(enumerate_ksets_2d(values, 1))
        for w in sample_functions(2, 25, rng=0):
            assert top_k_set(values, w, 1) in collection
        assert frozenset({0}) in collection and frozenset({1}) in collection
