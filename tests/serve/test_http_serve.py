"""HTTP layer + server endpoints: parsing, routing, errors, lifecycle."""

import asyncio
import time

import numpy as np
import pytest

from repro.serve import (
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceError,
    ServiceOverloadedError,
)
from repro.serve.http import ProtocolError, Request, render_response


@pytest.fixture(scope="module")
def served():
    matrix = np.random.default_rng(11).random((800, 3))
    server = ServerThread(matrix, ServerConfig(port=0))
    server.start()
    yield matrix, server
    server.stop()


# -- request object ----------------------------------------------------


def test_request_json_rejects_non_object():
    with pytest.raises(ProtocolError) as err:
        Request(method="POST", path="/x", body=b"[1,2]").json()
    assert err.value.status == 400


def test_request_json_rejects_garbage():
    with pytest.raises(ProtocolError):
        Request(method="POST", path="/x", body=b"{nope").json()


def test_request_keep_alive_default_and_close():
    assert Request(method="GET", path="/").keep_alive
    assert not Request(
        method="GET", path="/", headers={"connection": "Close"}
    ).keep_alive


def test_render_response_roundtrip_floats():
    # JSON float serialization is shortest-round-trip: exact.
    import json

    value = 0.1 + 0.2
    raw = render_response(200, {"x": value})
    body = raw.split(b"\r\n\r\n", 1)[1]
    assert json.loads(body)["x"] == value


# -- endpoints ---------------------------------------------------------


def test_health_and_stats(served):
    matrix, server = served
    with ServiceClient(server.url, timeout=30) as client:
        health = client.health()
        assert health["status"] == "ok"
        assert health["d"] == 3
        stats = client.stats()
        assert "engine" in stats and "coalescing" in stats


def test_unknown_endpoint_404(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/nope")
        assert err.value.status == 404


def test_wrong_method_405(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        with pytest.raises(ServiceError) as err:
            client._request("GET", "/v1/topk")
        assert err.value.status == 405


def test_missing_fields_400(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        for path, payload in [
            ("/v1/topk", {"k": 3}),
            ("/v1/topk", {"weights": [[0.1, 0.2, 0.3]]}),
            ("/v1/rank", {"weights": [[0.1, 0.2, 0.3]]}),
            ("/v1/insert", {}),
            ("/v1/delete", {"indices": []}),
        ]:
            with pytest.raises(ServiceError) as err:
                client._request("POST", path, payload)
            assert err.value.status == 400, (path, payload)


def test_dimension_mismatch_400(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        with pytest.raises(ServiceError) as err:
            client.topk([[0.5, 0.5]], 3)  # d=2 against a d=3 dataset
        assert err.value.status == 400


def test_bad_k_400(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        for bad_k in (0, -1, "five", True):
            with pytest.raises(ServiceError) as err:
                client._request(
                    "POST", "/v1/topk", {"weights": [[0.1, 0.2, 0.3]], "k": bad_k}
                )
            assert err.value.status == 400, bad_k


def test_representative_endpoint_matches_direct_mdrc(served):
    matrix, server = served
    from repro.core.mdrc import mdrc

    with ServiceClient(server.url, timeout=120) as client:
        response = client.representative(5, method="mdrc")
    direct = mdrc(matrix, 5)
    assert response["indices"] == [int(i) for i in direct.indices]
    assert response["method"] == "mdrc"


def test_representative_rejects_unknown_method(served):
    _, server = served
    with ServiceClient(server.url, timeout=30) as client:
        with pytest.raises(ServiceError) as err:
            client.representative(5, method="2drrr")
        assert err.value.status == 400


def test_mutations_update_views_and_queries():
    matrix = np.random.default_rng(5).random((600, 3))
    from repro.core.mdrc import mdrc
    from repro.engine import ScoreEngine

    with ServerThread(matrix, ServerConfig(port=0)) as url:
        with ServiceClient(url, timeout=120) as client:
            before = client.representative(4)
            rows = np.random.default_rng(6).random((6, 3))
            inserted = client.insert(rows)
            assert inserted["indices"].tolist() == list(range(600, 606))
            client.delete([0, 1])
            after = client.representative(4)
            assert after["revision"] > before["revision"]
            health = client.health()
            assert health["n"] == 604
            # Served representative == fresh mdrc over the mutated matrix.
            mutated = np.vstack([matrix, rows])[2:]
            direct = mdrc(mutated, 4)
            assert after["indices"] == [int(i) for i in direct.indices]
            # Served top-k == direct engine over the mutated matrix.
            weights = np.random.default_rng(7).random((4, 3))
            served = client.topk(weights, 5)
            with ScoreEngine(mutated, float32=True) as engine:
                reference = engine.topk_batch(weights, 5)
            assert np.array_equal(served["members"], reference.members)
            assert np.array_equal(served["order"], reference.order)


def test_rank_endpoint_matches_direct(served):
    matrix, server = served
    from repro.engine import ScoreEngine

    weights = np.random.default_rng(8).random((6, 3))
    subset = [3, 44, 199]
    with ServiceClient(server.url, timeout=30) as client:
        served_ranks = client.rank(weights, subset)["ranks"]
    with ScoreEngine(matrix, float32=True) as engine:
        reference = engine.rank_of_best_batch(weights, subset)
    assert np.array_equal(served_ranks, reference)


def test_draining_returns_503():
    matrix = np.random.default_rng(9).random((300, 3))
    server = ServerThread(matrix, ServerConfig(port=0))
    with server as url:
        client = ServiceClient(url, timeout=30, max_retries=0)
        client.health()
        server.call(server.server.drain)
        time.sleep(0.1)
        assert client.health()["status"] == "draining"
        with pytest.raises(ServiceOverloadedError) as err:
            client.topk(np.random.default_rng(0).random((1, 3)), 3)
        assert err.value.status == 503
        client.close()


def test_payload_too_large_413():
    matrix = np.random.default_rng(10).random((300, 3))
    with ServerThread(matrix, ServerConfig(port=0, max_body_bytes=1024)) as url:
        with ServiceClient(url, timeout=30) as client:
            with pytest.raises(ServiceError) as err:
                client.topk(np.random.default_rng(0).random((200, 3)), 3)
            assert err.value.status == 413


def test_malformed_http_gets_400():
    import socket

    matrix = np.random.default_rng(12).random((300, 3))
    with ServerThread(matrix, ServerConfig(port=0)) as url:
        host, port = url.split("://")[1].split(":")
        with socket.create_connection((host, int(port)), timeout=10) as sock:
            sock.sendall(b"NOT-HTTP\r\n\r\n")
            response = sock.recv(4096)
        assert b"400" in response.split(b"\r\n", 1)[0]


def test_server_thread_context_manager_cleans_up():
    matrix = np.random.default_rng(13).random((300, 3))
    server = ServerThread(matrix, ServerConfig(port=0))
    with server as url:
        with ServiceClient(url, timeout=30) as client:
            client.health()
    # After stop, the port is closed: a new connection must fail.
    import socket

    host, port = url.split("://")[1].split(":")
    with pytest.raises(OSError):
        socket.create_connection((host, int(port)), timeout=2).close()


def test_cli_serve_parser_wiring():
    from repro.cli import build_parser

    args = build_parser().parse_args(
        ["serve", "--dataset", "dot", "--n", "500", "--port", "0", "--max-pending", "9"]
    )
    assert args.command == "serve"
    assert args.max_pending == 9
    assert args.port == 0
