"""Coalescing determinism: the exactness contract over the serving path.

The load-bearing claim of :mod:`repro.serve.coalesce`: any mix of
concurrent top-k / rank queries, coalesced into shared engine calls,
yields responses bit-identical to direct engine calls over the same
matrix at the same revision — under every backend, and with faults
firing inside the serving engine.
"""

import asyncio
import threading
import time

import numpy as np
import pytest

from repro.engine import FaultInjector, RetryPolicy, ScoreEngine, faults
from repro.serve import (
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceOverloadedError,
)
from repro.serve.coalesce import Coalescer, WorkItem, _adjacent_groups


@pytest.fixture(scope="module")
def matrix():
    return np.random.default_rng(42).random((3000, 4))


def _storm(url, jobs, k=5, m=3, seed=0):
    """``jobs`` concurrent single-connection clients; returns results."""
    results = [None] * jobs

    def worker(i):
        with ServiceClient(url, timeout=60) as client:
            weights = np.random.default_rng(seed + i).random((m, 4))
            results[i] = (weights, client.topk(weights, k))

    threads = [threading.Thread(target=worker, args=(i,)) for i in range(jobs)]
    for t in threads:
        t.start()
    for t in threads:
        t.join()
    return results


@pytest.mark.parametrize("backend", ["serial", "thread", "process"])
def test_concurrent_distinct_queries_bit_identical(matrix, backend):
    """Distinct concurrent queries coalesce; every response is exact."""
    jobs = 2 if backend != "serial" else None
    config = ServerConfig(port=0, jobs=jobs, backend=backend)
    with ServerThread(matrix, config) as url:
        results = _storm(url, jobs=6, seed=100)
    with ScoreEngine(matrix, float32=True) as direct:
        for weights, response in results:
            reference = direct.topk_batch(weights, 5)
            assert np.array_equal(response["members"], reference.members)
            assert np.array_equal(response["order"], reference.order)


def test_concurrent_identical_queries_bit_identical(matrix):
    """Many clients asking the same query get the same exact answer."""
    with ServerThread(matrix, ServerConfig(port=0)) as url:
        results = _storm(url, jobs=6, seed=7)  # same seed -> same weights?
        # distinct seeds per worker inside _storm; force identical:
        identical = [None] * 5
        weights = np.random.default_rng(1).random((2, 4))

        def worker(i):
            with ServiceClient(url, timeout=60) as client:
                identical[i] = client.topk(weights, 5)

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(5)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
    with ScoreEngine(matrix, float32=True) as direct:
        reference = direct.topk_batch(weights, 5)
        for response in identical:
            assert np.array_equal(response["members"], reference.members)
            assert np.array_equal(response["order"], reference.order)
        for w, response in results:
            ref = direct.topk_batch(w, 5)
            assert np.array_equal(response["members"], ref.members)


def test_backlogged_mixed_queries_coalesce_and_match(matrix):
    """A paused dispatcher accumulates a mixed backlog; on resume the
    adjacent compatible runs coalesce and every response stays exact."""
    subset = [1, 17, 123, 999]
    server = ServerThread(matrix, ServerConfig(port=0, max_pending=32))
    with server as url:
        probe = ServiceClient(url, timeout=60)
        probe.health()
        server.call(server.server.pause)
        time.sleep(0.1)
        outputs = {}

        def topk_worker(i):
            with ServiceClient(url, timeout=60) as client:
                w = np.random.default_rng(200 + i).random((2, 4))
                outputs[("topk", i)] = (w, client.topk(w, 5))

        def rank_worker(i):
            with ServiceClient(url, timeout=60) as client:
                w = np.random.default_rng(300 + i).random((2, 4))
                outputs[("rank", i)] = (w, client.rank(w, subset))

        threads = [threading.Thread(target=topk_worker, args=(i,)) for i in range(4)]
        threads += [threading.Thread(target=rank_worker, args=(i,)) for i in range(4)]
        for t in threads:
            t.start()
        deadline = time.time() + 10
        while time.time() < deadline and server.server._coalescer.depth < 7:
            time.sleep(0.02)
        server.call(server.server.resume)
        for t in threads:
            t.join()
        stats = probe.stats()["coalescing"]
        probe.close()
    assert stats["coalesced"] >= 2, stats
    with ScoreEngine(matrix, float32=True) as direct:
        for (kind, i), (w, response) in outputs.items():
            if kind == "topk":
                ref = direct.topk_batch(w, 5)
                assert np.array_equal(response["members"], ref.members)
                assert np.array_equal(response["order"], ref.order)
            else:
                ref = direct.rank_of_best_batch(w, subset)
                assert np.array_equal(response["ranks"], ref)


def test_mutations_are_barriers_and_revisions_are_ordered(matrix):
    """A query enqueued before a mutation must not see its revision."""
    with ServerThread(matrix, ServerConfig(port=0)) as url:
        with ServiceClient(url, timeout=60) as client:
            r0 = client.topk(np.random.default_rng(0).random((1, 4)), 3)["revision"]
            ins = client.insert(np.random.default_rng(1).random((5, 4)))
            assert ins["revision"] > r0
            r1 = client.topk(np.random.default_rng(2).random((1, 4)), 3)["revision"]
            assert r1 == ins["revision"]
            dele = client.delete(ins["indices"][:2].tolist())
            assert dele["deleted"] == 2
            assert dele["revision"] > r1
            assert client.health()["n"] == matrix.shape[0] + 3


def test_serving_with_fault_injection_stays_exact(matrix):
    """Worker crashes inside the serving engine never corrupt a response."""
    injector = FaultInjector(seed=3, crash=0.2, max_faults=6)
    faults.install(injector)
    try:
        config = ServerConfig(
            port=0,
            jobs=2,
            backend="process",
            policy=RetryPolicy(max_retries=3, backoff_base_s=0.0),
        )
        with ServerThread(matrix, config) as url:
            results = _storm(url, jobs=4, seed=500)
    finally:
        faults.uninstall()
    with ScoreEngine(matrix, float32=True) as direct:
        for weights, response in results:
            reference = direct.topk_batch(weights, 5)
            assert np.array_equal(response["members"], reference.members)
            assert np.array_equal(response["order"], reference.order)


def test_adjacent_grouping_respects_barriers_and_keys():
    loop = asyncio.new_event_loop()
    try:
        fut = loop.create_future
        t1 = WorkItem(kind="topk", payload={}, future=fut(), key=5)
        t2 = WorkItem(kind="topk", payload={}, future=fut(), key=5)
        t3 = WorkItem(kind="topk", payload={}, future=fut(), key=7)
        r1 = WorkItem(kind="rank", payload={}, future=fut(), key=b"a")
        r2 = WorkItem(kind="rank", payload={}, future=fut(), key=b"a")
        b = WorkItem(kind="barrier", payload={}, future=fut(), run=lambda: None)
        t4 = WorkItem(kind="topk", payload={}, future=fut(), key=5)
        groups = _adjacent_groups([t1, t2, t3, r1, r2, b, t4])
        assert [len(g) for g in groups] == [2, 1, 2, 1, 1]
        assert groups[0] == [t1, t2]
        assert groups[2] == [r1, r2]
        assert groups[3][0].kind == "barrier"
    finally:
        loop.close()


def test_queue_full_raises_and_counts():
    async def scenario():
        class _Engine:  # never dispatched: coalescer not started
            pass

        coalescer = Coalescer(_Engine(), max_pending=2)
        loop = asyncio.get_running_loop()
        for _ in range(2):
            coalescer.offer(
                WorkItem(kind="topk", payload={}, future=loop.create_future(), key=1)
            )
        with pytest.raises(asyncio.QueueFull):
            coalescer.offer(
                WorkItem(kind="topk", payload={}, future=loop.create_future(), key=1)
            )
        assert coalescer.stats.rejected == 1
        assert coalescer.stats.requests == 2

    asyncio.run(scenario())


def test_overload_returns_typed_429(matrix):
    server = ServerThread(matrix, ServerConfig(port=0, max_pending=2))
    with server as url:
        warm = ServiceClient(url, timeout=60)
        warm.topk(np.random.default_rng(0).random((1, 4)), 3)
        server.call(server.server.pause)
        time.sleep(0.1)
        outcomes = []

        def worker(i):
            try:
                with ServiceClient(url, timeout=60, max_retries=0) as client:
                    client.topk(np.random.default_rng(i).random((1, 4)), 3)
                outcomes.append("ok")
            except ServiceOverloadedError as exc:
                assert exc.status == 429
                assert exc.retry_after_ms > 0
                outcomes.append("429")

        threads = [threading.Thread(target=worker, args=(i,)) for i in range(6)]
        for t in threads:
            t.start()
        deadline = time.time() + 10
        while time.time() < deadline and "429" not in outcomes:
            time.sleep(0.02)
        server.call(server.server.resume)
        for t in threads:
            t.join()
        warm.close()
    assert outcomes.count("429") >= 1
    assert outcomes.count("ok") >= 1
