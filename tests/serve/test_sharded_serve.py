"""Sharded serving: ``ServerConfig(shards=N)`` end-to-end.

The server boots a :class:`~repro.engine.ShardedScoreEngine` behind the
same :class:`~repro.Session` facade; every HTTP response must be
bit-identical to an unsharded server over the same data, the fleet owns
durability and exactly-once keys (the server-level store stays off),
``/health`` reports the shard fleet, ``/v1/stats`` reports the
two-level durability layout, and a killed sharded server restarts from
its data dir into the identical state.
"""

import numpy as np
import pytest

from repro.engine import ScoreEngine
from repro.serve import ServerConfig, ServerThread, ServiceClient


@pytest.fixture
def matrix():
    return np.random.default_rng(5).standard_normal((80, 4))


@pytest.fixture
def weights():
    return np.abs(np.random.default_rng(6).standard_normal((3, 4)))


def _sharded(tmp_path, **kw):
    return ServerConfig(
        port=0, jobs=1, shards=2, shard_isolation="local",
        data_dir=str(tmp_path), **kw,
    )


def test_sharded_server_bit_identical_and_exactly_once(matrix, weights, tmp_path):
    oracle = ScoreEngine(matrix.copy())
    rng = np.random.default_rng(7)
    with ServerThread(matrix.copy(), _sharded(tmp_path)) as url:
        client = ServiceClient(url)

        health = client.health()
        assert health["shards"] == {"count": 2, "serving": 2, "recovering": 0, "dead": 0}
        assert health["durable"] is True

        got = client.topk(weights, 5)
        assert np.array_equal(np.asarray(got["order"]), oracle.topk_batch(weights, 5).order)

        # Keyed insert through the fleet path: retry replays, nothing
        # re-applies, and queries keep matching the oracle bit-for-bit.
        new = rng.standard_normal((2, 4))
        first = client.insert(new, idempotency_key="k1")
        retried = client.insert(new, idempotency_key="k1")
        assert list(first["indices"]) == list(retried["indices"])
        assert retried.get("replayed")
        oracle.insert_rows(new)
        oracle.compact()
        got = client.topk(weights, 5)
        assert np.array_equal(np.asarray(got["order"]), oracle.topk_batch(weights, 5).order)

        # Algorithms run on the reference engine and stay consistent.
        rep = client.representative(4, method="mdrc")
        indices = np.asarray(rep["indices"], dtype=np.int64)
        assert indices.size > 0 and np.all((0 <= indices) & (indices < oracle.n))

        stats = client.stats()
        assert stats["durability"]["mode"] == "sharded"
        assert len(stats["durability"]["shards"]) == 2
        router = stats["durability"]["router"]
        assert router["commits"] >= 1 and "wal_bytes_since_snapshot" in router
    oracle.close()


def test_sharded_server_kill_restart_bit_identical(matrix, weights, tmp_path):
    oracle = ScoreEngine(matrix.copy())
    rng = np.random.default_rng(8)
    server = ServerThread(matrix.copy(), _sharded(tmp_path)).start()
    client = ServiceClient(server.url)
    new = rng.standard_normal((3, 4))
    pending = client.insert(new, idempotency_key="ambiguous")
    client.delete([0, 11], idempotency_key="drop")
    oracle.insert_rows(new)
    oracle.delete_rows([0, 11])
    oracle.compact()
    server.kill()

    server = ServerThread(None, _sharded(tmp_path)).start()
    try:
        client = ServiceClient(server.url)
        health = client.health()
        assert health["n"] == oracle.n
        assert health["revision"] == 2
        # The ambiguous fleet mutation, retried with its key after the
        # crash: the stored response comes back from the router's table.
        retried = client.insert(new, idempotency_key="ambiguous")
        assert list(retried["indices"]) == list(pending["indices"])
        assert retried.get("replayed")
        got = client.topk(weights, 6)
        assert np.array_equal(
            np.asarray(got["order"]), oracle.topk_batch(weights, 6).order
        )
    finally:
        server.stop()
    oracle.close()


def test_unsharded_durable_health_reports_wal_state(matrix, tmp_path):
    cfg = ServerConfig(port=0, jobs=1, data_dir=str(tmp_path))
    with ServerThread(matrix.copy(), cfg) as url:
        client = ServiceClient(url)
        client.insert(np.zeros((1, 4)), idempotency_key="one")
        health = client.health()
        assert "shards" not in health
        assert health["durability"]["wal_bytes_since_snapshot"] > 0
        assert health["durability"]["last_snapshot_age_s"] >= 0.0
        stats = client.stats()
        assert stats["durability"]["wal_bytes_since_snapshot"] > 0
