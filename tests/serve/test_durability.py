"""Durable serving: crash recovery, exactly-once mutations, shutdown.

End-to-end coverage of the WAL layer through the HTTP surface: a
durable server killed without warning (``ServerThread.kill()`` — the
in-process ``kill -9`` analogue, which leaves the untruncated WAL and a
stale lock exactly like SIGKILL) restarts into a state whose every
response is bit-identical to a server that never died; a mutation
retried with its idempotency key is applied exactly once, even when the
retry lands after the crash; SIGTERM on a real ``repro serve`` process
drains, snapshots and exits 0; the client's overload backoff honors
``retry_after_ms`` and gives up with a typed error; and a failed boot
(unrecoverable data dir) releases the lock it took.
"""

import os
import signal
import subprocess
import sys
import time

import numpy as np
import pytest

from repro.exceptions import CorruptStateError, DataDirLockedError
from repro.serve import (
    ServerConfig,
    ServerThread,
    ServiceClient,
    ServiceOverloadedError,
    ServiceRetryExhaustedError,
)
from repro.serve.app import Server


@pytest.fixture
def matrix():
    return np.random.default_rng(11).random((300, 3))


def _config(data_dir, **kw):
    return ServerConfig(port=0, data_dir=str(data_dir), jobs=1, **kw)


def _churn(client, rng, rounds, tag):
    for i in range(rounds):
        client.insert(rng.random((2, 3)), idempotency_key=f"{tag}-ins-{i}")
        client.delete(
            sorted(set(int(x) for x in rng.integers(0, 200, 2))),
            idempotency_key=f"{tag}-del-{i}",
        )


def test_kill_restart_bit_identical(matrix, tmp_path):
    rng_a, rng_b = np.random.default_rng(1), np.random.default_rng(1)
    oracle_thread = ServerThread(matrix, ServerConfig(port=0, jobs=1)).start()
    try:
        oracle = ServiceClient(oracle_thread.url)
        durable = ServerThread(matrix, _config(tmp_path)).start()
        client = ServiceClient(durable.url)
        _churn(client, rng_a, 3, "a")
        _churn(oracle, rng_b, 3, "a")
        pending = client.insert([[0.5, 0.25, 0.125]], idempotency_key="ambiguous")
        oracle.insert([[0.5, 0.25, 0.125]], idempotency_key="ambiguous")

        durable.kill()
        assert (tmp_path / "LOCK").exists()  # SIGKILL leaves the lock

        durable = ServerThread(matrix, _config(tmp_path)).start()
        client = ServiceClient(durable.url)
        try:
            health, oracle_health = client.health(), oracle.health()
            assert health["n"] == oracle_health["n"]
            assert health["revision"] == oracle_health["revision"]

            # The ambiguous mutation, retried with the same key after the
            # crash: the stored response comes back, nothing re-applies.
            retried = client.insert(
                [[0.5, 0.25, 0.125]], idempotency_key="ambiguous"
            )
            assert np.array_equal(retried["indices"], pending["indices"])
            assert retried["revision"] == pending["revision"]
            assert client.health()["n"] == oracle_health["n"]

            _churn(client, rng_a, 2, "b")
            _churn(oracle, rng_b, 2, "b")
            weights = np.random.default_rng(2).random((4, 3))
            got, want = client.topk(weights, 5), oracle.topk(weights, 5)
            assert np.array_equal(got["members"], want["members"])
            assert np.array_equal(got["order"], want["order"])
            assert got["revision"] == want["revision"]
            got, want = client.rank(weights, [0, 5, 9]), oracle.rank(weights, [0, 5, 9])
            assert np.array_equal(got["ranks"], want["ranks"])
            rep = client.representative(3, "mdrc")
            assert rep["indices"] == oracle.representative(3, "mdrc")["indices"]
        finally:
            durable.stop()
    finally:
        oracle_thread.stop()


def test_graceful_stop_snapshots_and_releases(matrix, tmp_path):
    durable = ServerThread(matrix, _config(tmp_path)).start()
    client = ServiceClient(durable.url)
    _churn(client, np.random.default_rng(0), 2, "x")
    revision = client.health()["revision"]
    durable.stop()

    assert not (tmp_path / "LOCK").exists()
    snapshots = [f for f in os.listdir(tmp_path) if f.startswith("snapshot-")]
    assert snapshots, "graceful stop must cut a snapshot"
    # The WAL is truncated: the next boot replays nothing.
    durable = ServerThread(matrix, _config(tmp_path)).start()
    try:
        client = ServiceClient(durable.url)
        recovery = client.stats()["durability"]["recovery"]
        assert recovery == {"snapshot_revision": revision, "replayed_commits": 0}
        assert client.health()["revision"] == revision
    finally:
        durable.stop()


def test_duplicate_key_without_data_dir(matrix):
    """Exactly-once holds in-memory too (no data_dir configured)."""
    with ServerThread(matrix, ServerConfig(port=0, jobs=1)) as url:
        client = ServiceClient(url)
        first = client.insert([[0.1, 0.2, 0.3]], idempotency_key="once")
        n_after = client.health()["n"]
        again = client.insert([[0.1, 0.2, 0.3]], idempotency_key="once")
        assert np.array_equal(first["indices"], again["indices"])
        assert client.health()["n"] == n_after


def test_second_server_on_locked_data_dir(matrix, tmp_path):
    durable = ServerThread(matrix, _config(tmp_path)).start()
    try:
        # The lock names a live pid (ours): a second server must refuse.
        with pytest.raises(DataDirLockedError):
            Server(matrix, _config(tmp_path))
    finally:
        durable.stop()


def test_failed_boot_releases_lock(matrix, tmp_path):
    """ExitStack unwind: an unrecoverable data dir (every snapshot
    corrupt, WAL not anchored at revision 1) fails boot — without
    leaving the lock or a WAL handle behind."""
    durable = ServerThread(matrix, _config(tmp_path)).start()
    ServiceClient(durable.url).insert([[0.1, 0.2, 0.3]], idempotency_key="k")
    durable.stop()
    for name in os.listdir(tmp_path):
        if name.startswith("snapshot-"):
            path = tmp_path / name
            raw = bytearray(path.read_bytes())
            raw[-1] ^= 0xFF
            path.write_bytes(bytes(raw))

    with pytest.raises(CorruptStateError):
        Server(matrix, _config(tmp_path))
    assert not (tmp_path / "LOCK").exists(), "failed boot leaked the lock"
    assert not [f for f in os.listdir(tmp_path) if f.endswith(".tmp")]

    # Starting over is an explicit act: after deleting the corrupt
    # snapshots (the WAL is empty — the graceful stop truncated it),
    # boot begins a fresh history from the supplied matrix.
    for name in os.listdir(tmp_path):
        if name.startswith("snapshot-"):
            os.unlink(tmp_path / name)
    server = ServerThread(matrix, _config(tmp_path)).start()
    try:
        health = ServiceClient(server.url).health()
        assert health["revision"] == 0 and health["n"] == matrix.shape[0]
    finally:
        server.stop()


def test_client_backoff_honors_hint_and_gives_up():
    client = ServiceClient("http://127.0.0.1:1", max_retries=3)
    sleeps: list[float] = []
    client._sleep = sleeps.append
    calls = {"n": 0}

    def scripted(method, path, body, headers):
        calls["n"] += 1
        if calls["n"] <= 2:
            raise ServiceOverloadedError(429, {"retry_after_ms": 200})
        return {"ok": True}

    client._request_once = scripted
    assert client._request("GET", "/health") == {"ok": True}
    assert calls["n"] == 3
    assert len(sleeps) == 2
    assert all(s >= 0.2 for s in sleeps)  # the server hint is the floor

    calls["n"] = 0
    sleeps.clear()

    def always_full(method, path, body, headers):
        calls["n"] += 1
        raise ServiceOverloadedError(503, {})

    client._request_once = always_full
    with pytest.raises(ServiceRetryExhaustedError) as err:
        client._request("GET", "/health")
    assert calls["n"] == 4  # 1 initial + max_retries
    assert err.value.attempts == 4
    assert isinstance(err.value.last, ServiceOverloadedError)

    # max_retries=0 restores raw semantics for caller-driven backoff.
    sleeps.clear()
    raw = ServiceClient("http://127.0.0.1:1", max_retries=0)
    raw._request_once = always_full
    raw._sleep = sleeps.append
    with pytest.raises(ServiceOverloadedError):
        raw._request("GET", "/health")
    assert not sleeps


def test_backoff_delay_is_capped_exponential():
    client = ServiceClient(
        "http://127.0.0.1:1", max_retries=8, backoff_base_ms=25, backoff_cap_ms=100
    )
    overload = ServiceOverloadedError(429, {"retry_after_ms": 1})
    for attempt, ceiling in [(1, 25), (2, 50), (3, 100), (8, 100)]:
        delays = {client._backoff_ms(attempt, overload) for _ in range(32)}
        assert all(d <= ceiling * 1.5 + 1e-9 for d in delays)
        assert all(d >= ceiling * 0.5 - 1e-9 for d in delays)
        assert len(delays) > 1  # jitter actually varies


def test_sigterm_drains_snapshots_exits_zero(tmp_path):
    """A real ``repro serve`` process: SIGTERM → drain, snapshot, rc 0."""
    env = dict(os.environ)
    env["PYTHONPATH"] = "src" + os.pathsep * bool(env.get("PYTHONPATH")) + env.get(
        "PYTHONPATH", ""
    )
    proc = subprocess.Popen(
        [
            sys.executable, "-m", "repro", "serve",
            "--dataset", "dot", "--n", "200", "--d", "3",
            "--port", "0", "--jobs", "1",
            "--data-dir", str(tmp_path),
        ],
        env=env,
        cwd=os.path.dirname(os.path.dirname(os.path.dirname(__file__))),
        stderr=subprocess.PIPE,
        text=True,
    )
    try:
        line = proc.stderr.readline()
        assert "listening on http://" in line, line
        port = int(line.split("http://", 1)[1].split()[0].rsplit(":", 1)[1])
        with ServiceClient(f"http://127.0.0.1:{port}", timeout=30) as client:
            client.insert([[0.5, 0.5, 0.5]], idempotency_key="sig")
            revision = client.health()["revision"]
        proc.send_signal(signal.SIGTERM)
        assert proc.wait(timeout=60) == 0
    finally:
        if proc.poll() is None:
            proc.kill()
            proc.wait(timeout=30)

    snapshots = [f for f in os.listdir(tmp_path) if f.startswith("snapshot-")]
    assert snapshots, "SIGTERM must leave a drain snapshot"
    assert not (tmp_path / "LOCK").exists()
    # The snapshot holds the acknowledged mutation: a fresh boot serves
    # the post-insert revision with nothing to replay.
    server = ServerThread(
        np.zeros((1, 3)),  # ignored: recovery uses the snapshot matrix
        _config(tmp_path),
    ).start()
    try:
        health = ServiceClient(server.url).health()
        assert health["revision"] == revision
        assert health["n"] == 201
    finally:
        server.stop()
